"""Tests for the resilience subsystem: checkpoints, guards, faults."""

import json

import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.threshold import greedy_threshold_solve
from repro.errors import ReproError, SolverError, SolverInterrupted
from repro.resilience import (
    CHECKPOINT_VERSION,
    Checkpointer,
    FaultInjector,
    RunGuard,
    coerce_checkpointer,
    current_rss_mb,
    inject_faults,
    solve_context,
)
from repro.resilience.checkpoint import order_crc
from repro.resilience.faults import InjectedCrash, active_faults
from repro.workloads.graphs import random_preference_graph


@pytest.fixture
def graph():
    return random_preference_graph(40, variant="independent", seed=42)


def _state_with(graph, nodes):
    state = GreedyState(as_csr(graph), "independent")
    for node in nodes:
        state.add_node(node)
    return state


class TestSolveContext:
    def test_deterministic(self, graph):
        csr = as_csr(graph)
        assert solve_context(csr, "independent") == solve_context(
            csr, "independent"
        )

    def test_varies_with_variant(self, graph):
        csr = as_csr(graph)
        assert solve_context(csr, "independent") != solve_context(
            csr, "normalized"
        )

    def test_varies_with_graph(self, graph):
        other = random_preference_graph(
            40, variant="independent", seed=43
        )
        assert solve_context(as_csr(graph), "independent") != (
            solve_context(as_csr(other), "independent")
        )

    def test_varies_with_constraints(self, graph):
        import numpy as np

        csr = as_csr(graph)
        plain = solve_context(csr, "independent")
        seeded = solve_context(
            csr, "independent", seed_indices=np.array([1, 2])
        )
        excluded = solve_context(
            csr, "independent",
            exclude_indices=np.array([3]),
        )
        assert len({plain, seeded, excluded}) == 3


class TestCheckpointer:
    def test_validation(self, tmp_path):
        with pytest.raises(ReproError, match="every_rounds"):
            Checkpointer(tmp_path, every_rounds=0)
        with pytest.raises(ReproError, match="every_s"):
            Checkpointer(tmp_path, every_s=0)
        with pytest.raises(ReproError, match="keep"):
            Checkpointer(tmp_path, keep=0)

    def test_save_load_roundtrip(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        state = _state_with(graph, [3, 1, 7])
        ckpt = Checkpointer(tmp_path)
        assert ckpt.save(state, context)
        snapshot = ckpt.load(context, n_items=csr.n_items)
        assert snapshot is not None
        assert snapshot.order == [3, 1, 7]
        assert snapshot.epoch == 3
        assert snapshot.cover == pytest.approx(float(state.cover))
        assert snapshot.digest == order_crc([3, 1, 7])

    def test_maybe_save_respects_cadence(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path, every_rounds=3)
        ckpt.begin()
        state = GreedyState(csr, "independent")
        saved = []
        for node in range(6):
            state.add_node(node)
            saved.append(ckpt.maybe_save(state, context))
        assert saved == [False, False, True, False, False, True]
        assert ckpt.written == 2

    def test_load_prefers_newest(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path)
        ckpt.save(_state_with(graph, [3]), context)
        ckpt.save(_state_with(graph, [3, 1]), context)
        assert ckpt.load(context).epoch == 2

    def test_corrupt_newest_falls_back(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path)
        ckpt.save(_state_with(graph, [3]), context)
        ckpt.save(_state_with(graph, [3, 1]), context)
        newest = sorted(tmp_path.glob("ckpt-*"))[-1]
        newest.write_text("{truncated")
        snapshot = ckpt.load(context)
        assert snapshot.epoch == 1
        assert snapshot.order == [3]

    def test_foreign_context_ignored(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path)
        ckpt.save(_state_with(graph, [3]), context)
        assert ckpt.load("00000000") is None

    @pytest.mark.parametrize(
        "mutation",
        [
            {"version": CHECKPOINT_VERSION + 1},
            {"epoch": 5},                   # len(order) != epoch
            {"order": [2, 2]},              # duplicate selections
            {"order": [99999], "epoch": 1},  # out of bounds
            {"digest": 1},                  # CRC mismatch
            {"order": "31"},                # wrong type
        ],
    )
    def test_invalid_payload_rejected(self, graph, tmp_path, mutation):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path)
        ckpt.save(_state_with(graph, [3, 1]), context)
        path = next(tmp_path.glob("ckpt-*"))
        payload = json.loads(path.read_text())
        payload.update(mutation)
        path.write_text(json.dumps(payload))
        assert ckpt.load(context, n_items=csr.n_items) is None

    def test_prune_keeps_newest(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path, keep=2)
        order = []
        for node in (3, 1, 7, 9):
            order.append(node)
            ckpt.save(_state_with(graph, order), context)
        snapshots = sorted(tmp_path.glob("ckpt-*"))
        assert len(snapshots) == 2
        assert snapshots[-1].name.endswith("0000000004.json")

    def test_injected_write_failure_swallowed(self, graph, tmp_path):
        csr = as_csr(graph)
        context = solve_context(csr, "independent")
        ckpt = Checkpointer(tmp_path)
        with inject_faults(FaultInjector(checkpoint_write=1.0)):
            assert not ckpt.save(_state_with(graph, [3]), context)
        assert ckpt.write_failures == 1
        assert list(tmp_path.glob("ckpt-*")) == []
        # The aborted temp file must not leak either.
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_coerce(self, tmp_path):
        ckpt = coerce_checkpointer(tmp_path)
        assert isinstance(ckpt, Checkpointer)
        assert coerce_checkpointer(ckpt) is ckpt
        assert coerce_checkpointer(None) is None
        with pytest.raises(ReproError, match="Checkpointer"):
            coerce_checkpointer(42)


class TestRunGuard:
    def test_validation(self):
        with pytest.raises(ReproError, match="at least one"):
            RunGuard()
        with pytest.raises(ReproError, match="deadline_s"):
            RunGuard(deadline_s=-1)
        with pytest.raises(ReproError, match="max_rss_mb"):
            RunGuard(max_rss_mb=0)
        with pytest.raises(ReproError, match="on_trigger"):
            RunGuard(deadline_s=1, on_trigger="abort")

    def test_current_rss_positive(self):
        rss = current_rss_mb()
        assert rss is not None and rss > 1.0

    def test_deadline_partial_result(self, graph):
        guard = RunGuard(deadline_s=0, on_trigger="partial")
        result = greedy_solve(
            graph, k=10, variant="independent", guard=guard
        )
        assert result.interrupted
        assert "deadline" in result.interrupted_reason
        assert len(result.retained) == 1  # one committed round
        assert guard.deadline_hits == 1
        assert result.to_dict()["interrupted"] is True

    def test_deadline_raise_carries_partial(self, graph):
        guard = RunGuard(deadline_s=0, on_trigger="raise")
        with pytest.raises(SolverInterrupted) as excinfo:
            greedy_solve(graph, k=10, variant="independent", guard=guard)
        partial = excinfo.value.partial
        assert partial.interrupted
        assert len(partial.retained) == 1
        clean = greedy_solve(graph, k=10, variant="independent")
        assert partial.retained == clean.retained[:1]

    def test_rss_ceiling_trips(self, graph):
        # Any real process dwarfs a 1-MiB ceiling: trips on round 1.
        guard = RunGuard(max_rss_mb=1, on_trigger="partial")
        result = greedy_solve(
            graph, k=10, variant="independent", guard=guard
        )
        assert result.interrupted
        assert "RSS" in result.interrupted_reason
        assert guard.rss_hits == 1

    def test_guard_rearms_between_solves(self, graph):
        guard = RunGuard(deadline_s=30, on_trigger="partial")
        first = greedy_solve(
            graph, k=5, variant="independent", guard=guard
        )
        second = greedy_solve(
            graph, k=5, variant="independent", guard=guard
        )
        assert not first.interrupted and not second.interrupted

    def test_threshold_guard_partial(self, graph):
        guard = RunGuard(deadline_s=0, on_trigger="partial")
        result = greedy_threshold_solve(
            graph, threshold=0.99, variant="independent", guard=guard
        )
        assert result.interrupted
        assert len(result.retained) == 1


class TestFaultInjector:
    def test_spec_roundtrip(self):
        faults = FaultInjector.from_spec(
            "worker_crash=0.25:recv_delay=0.5:seed=9:kill_round=3"
        )
        assert faults.worker_crash == 0.25
        assert faults.recv_delay == 0.5
        assert faults.seed == 9
        assert faults.kill_round == 3

    def test_spec_rejects_unknown_key(self):
        with pytest.raises(ReproError, match="REPRO_FAULTS"):
            FaultInjector.from_spec("explode=1")
        with pytest.raises(ReproError, match="REPRO_FAULTS"):
            FaultInjector.from_spec("worker_crash=lots")

    def test_validation(self):
        with pytest.raises(ReproError, match="probability"):
            FaultInjector(worker_crash=1.5)
        with pytest.raises(ReproError, match="kill_round"):
            FaultInjector(kill_round=0)
        with pytest.raises(ReproError, match="recv_delay"):
            FaultInjector(recv_delay=-1)

    def test_solver_round_kill(self):
        faults = FaultInjector(kill_round=3)
        faults.solver_round(1)
        faults.solver_round(2)
        with pytest.raises(InjectedCrash) as excinfo:
            faults.solver_round(3)
        assert excinfo.value.round_no == 3
        assert faults.fired == {"kill_round": 1}

    def test_corrupt_record_deterministic(self):
        line = '{"session_id": "s", "clicks": ["a"]}'
        first = [
            FaultInjector(seed=5, malformed_record=0.5).corrupt_record(
                line
            )
            for _ in range(4)
        ]
        second = [
            FaultInjector(seed=5, malformed_record=0.5).corrupt_record(
                line
            )
            for _ in range(4)
        ]
        assert first == second

    def test_env_activation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_faults() is None
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=7:seed=2")
        faults = active_faults()
        assert faults is not None and faults.kill_round == 7
        # Same spec: same cached injector (one deterministic stream).
        assert active_faults() is faults
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=8")
        assert active_faults().kill_round == 8

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=7")
        explicit = FaultInjector(kill_round=1)
        with inject_faults(explicit):
            assert active_faults() is explicit
        assert active_faults().kill_round == 7

    def test_inject_none_suppresses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=7")
        with inject_faults(None):
            assert active_faults() is None
        assert active_faults().kill_round == 7


class TestResume:
    @pytest.mark.parametrize(
        "strategy", ["naive", "lazy", "accelerated"]
    )
    def test_kill_resume_matches_clean(self, graph, tmp_path, strategy):
        clean = greedy_solve(
            graph, k=12, variant="independent", strategy=strategy
        )
        with pytest.raises(InjectedCrash):
            with inject_faults(FaultInjector(kill_round=7)):
                greedy_solve(
                    graph, k=12, variant="independent",
                    strategy=strategy,
                    checkpoint=Checkpointer(tmp_path, every_rounds=2),
                )
        resumed = greedy_solve(
            graph, k=12, variant="independent", strategy=strategy,
            checkpoint=Checkpointer(tmp_path),
        )
        assert resumed.retained == clean.retained
        assert resumed.cover == clean.cover

    def test_resume_crosses_stopping_rules(self, graph, tmp_path):
        # The context hash excludes k/threshold: greedy checkpoints
        # resume a threshold solve of the same instance (Section 3.2's
        # prefix property).
        greedy_solve(
            graph, k=10, variant="independent",
            checkpoint=Checkpointer(tmp_path, every_rounds=1),
        )
        clean = greedy_threshold_solve(
            graph, threshold=0.6, variant="independent"
        )
        resumed = greedy_threshold_solve(
            graph, threshold=0.6, variant="independent",
            checkpoint=Checkpointer(tmp_path),
        )
        assert resumed.retained == clean.retained
        assert resumed.cover == pytest.approx(clean.cover)

    def test_resume_disabled(self, graph, tmp_path):
        ckpt = Checkpointer(tmp_path, every_rounds=1)
        greedy_solve(
            graph, k=5, variant="independent", checkpoint=ckpt
        )
        writer = Checkpointer(tmp_path, resume=False)
        writer.load_calls = writer.loads
        greedy_solve(
            graph, k=5, variant="independent", checkpoint=writer
        )
        assert writer.loads == writer.load_calls  # never consulted

    def test_final_snapshot_written(self, graph, tmp_path):
        # every_rounds larger than k: only the final best-effort
        # snapshot lands, and it carries the full selection.
        from repro.core.variants import Variant

        ckpt = Checkpointer(tmp_path, every_rounds=100)
        result = greedy_solve(
            graph, k=5, variant="independent", checkpoint=ckpt
        )
        snapshot = ckpt.load(
            solve_context(as_csr(graph), Variant.INDEPENDENT)
        )
        assert snapshot is not None
        assert len(snapshot.order) == len(result.retained)

    def test_checkpoint_path_coercion_in_solver(self, graph, tmp_path):
        result = greedy_solve(
            graph, k=5, variant="independent",
            checkpoint=str(tmp_path / "ckpts"),
        )
        assert len(result.retained) == 5
        assert list((tmp_path / "ckpts").glob("ckpt-*"))


class TestFacade:
    def test_solve_forwards_guard(self, graph):
        from repro import solve

        result = solve(
            graph, k=10, variant="independent",
            guard=RunGuard(deadline_s=0, on_trigger="partial"),
        )
        assert result.interrupted
        assert result.telemetry is not None
        metrics = result.telemetry.metrics
        assert metrics.counter("facade.interrupted").value == 1

    def test_solve_raise_mode_attaches_telemetry(self, graph):
        from repro import solve

        with pytest.raises(SolverInterrupted) as excinfo:
            solve(
                graph, k=10, variant="independent",
                guard=RunGuard(deadline_s=0, on_trigger="raise"),
            )
        assert excinfo.value.partial.telemetry is not None

    def test_solve_rejects_guard_with_budget(self, graph):
        from repro import solve

        costs = {item: 1.0 for item in as_csr(graph).items}
        with pytest.raises(SolverError, match="resilience"):
            solve(
                graph, variant="independent",
                constraints={"budget": 3.0, "costs": costs},
                guard=RunGuard(deadline_s=1),
            )

    def test_solve_checkpoint_resume_counts(self, graph, tmp_path):
        from repro import solve
        from repro.observability import SolverTrace

        with pytest.raises(InjectedCrash):
            with inject_faults(FaultInjector(kill_round=5)):
                solve(
                    graph, k=10, variant="independent",
                    tracer=SolverTrace(),
                    checkpoint=Checkpointer(tmp_path, every_rounds=1),
                )
        resumed = solve(
            graph, k=10, variant="independent", tracer=SolverTrace(),
            checkpoint=Checkpointer(tmp_path),
        )
        metrics = resumed.telemetry.metrics
        assert metrics.counter("resilience.resumes").value == 1
        assert metrics.counter("resilience.resumed_rounds").value == 5


class TestHarness:
    def test_resilience_differential_smoke(self):
        from repro.evaluation.resilience import (
            run_resilience_differential,
        )

        report = run_resilience_differential(
            instances=2, min_items=12, max_items=24, seed=5
        )
        assert report.ok, report.summary()
        assert report.checks > 20
        assert "OK" in report.summary()


class TestCooperativeStop:
    """The stop_round fault: a stop reason with NO run guard configured."""

    def test_spec_parses_stop_round(self):
        faults = FaultInjector.from_spec("stop_round=2:seed=3")
        assert faults.stop_round == 2
        assert faults.seed == 3

    def test_validation(self):
        with pytest.raises(ReproError, match="stop_round"):
            FaultInjector(stop_round=0)

    def test_solver_stop_hook(self):
        faults = FaultInjector(stop_round=2)
        assert faults.solver_stop(1) is None
        reason = faults.solver_stop(2)
        assert reason is not None and "round 2" in reason
        assert faults.fired == {"stop_round": 1}

    def test_greedy_interrupts_without_guard(self, graph):
        # Regression for the guard-deref bug: a non-None stop reason
        # with guard=None must return the flagged partial result, not
        # crash on ``guard.on_trigger``.
        clean = greedy_solve(graph, k=10, variant="independent")
        with inject_faults(FaultInjector(stop_round=4)):
            partial = greedy_solve(graph, k=10, variant="independent")
        assert partial.interrupted
        assert "injected cooperative stop" in partial.interrupted_reason
        assert len(partial.retained) == 4
        assert list(partial.retained) == list(clean.retained[:4])

    def test_threshold_interrupts_without_guard(self, graph):
        clean = greedy_threshold_solve(
            graph, threshold=0.9, variant="independent"
        )
        assert clean.k > 3
        with inject_faults(FaultInjector(stop_round=2)):
            partial = greedy_threshold_solve(
                graph, threshold=0.9, variant="independent"
            )
        assert partial.interrupted
        assert partial.k == 2
        assert list(partial.retained) == list(clean.retained[:2])

    def test_guard_raise_still_raises_on_stop(self, graph):
        # A configured guard keeps its contract when the stop reason
        # comes from the cooperative-stop hook.
        with pytest.raises(SolverInterrupted) as excinfo:
            with inject_faults(FaultInjector(stop_round=3)):
                greedy_solve(
                    graph, k=10, variant="independent",
                    guard=RunGuard(deadline_s=3600, on_trigger="raise"),
                )
        assert len(excinfo.value.partial.retained) == 3


class TestThresholdResume:
    """Unit coverage for the threshold solver's mid-run resume path."""

    def test_killed_threshold_solve_resumes_bitwise_equal(
        self, graph, tmp_path
    ):
        threshold = 0.85
        clean = greedy_threshold_solve(
            graph, threshold=threshold, variant="independent"
        )
        assert clean.k > 2
        with pytest.raises(InjectedCrash):
            with inject_faults(FaultInjector(kill_round=clean.k - 1)):
                greedy_threshold_solve(
                    graph, threshold=threshold, variant="independent",
                    checkpoint=Checkpointer(tmp_path, every_rounds=1),
                )
        resumed = greedy_threshold_solve(
            graph, threshold=threshold, variant="independent",
            checkpoint=Checkpointer(tmp_path),
        )
        assert list(resumed.retained) == list(clean.retained)
        assert resumed.cover == clean.cover  # bit-equal, not approx
        assert resumed.prefix_covers.tolist() == (
            clean.prefix_covers.tolist()
        )

    def test_resume_stops_at_threshold_boundary(self, graph, tmp_path):
        # The resumed run must stop exactly where the threshold is
        # first crossed: the next-shorter prefix does not qualify.
        threshold = 0.85
        with pytest.raises(InjectedCrash):
            with inject_faults(FaultInjector(kill_round=2)):
                greedy_threshold_solve(
                    graph, threshold=threshold, variant="independent",
                    checkpoint=Checkpointer(tmp_path, every_rounds=1),
                )
        resumed = greedy_threshold_solve(
            graph, threshold=threshold, variant="independent",
            checkpoint=Checkpointer(tmp_path),
        )
        assert not resumed.interrupted
        assert resumed.cover >= threshold - 1e-12
        assert resumed.prefix_covers[-2] < threshold - 1e-12

    def test_completed_checkpoint_replays_only_qualifying_prefix(
        self, graph, tmp_path
    ):
        # A checkpoint from a *completed* k-solve over the same
        # instance is reusable: the threshold solve replays just the
        # shortest qualifying prefix of the snapshot's order.
        full = greedy_solve(
            graph, k=graph.n_items, variant="independent",
            checkpoint=Checkpointer(tmp_path, every_rounds=1),
        )
        threshold = float(full.prefix_covers[3])
        resumed = greedy_threshold_solve(
            graph, threshold=threshold, variant="independent",
            checkpoint=Checkpointer(tmp_path),
        )
        assert resumed.k == 3
        assert list(resumed.retained) == list(full.retained[:3])
