"""Tests for the Table 1 approximation-ratio formulas."""

import math

import pytest

from repro.errors import SolverError
from repro.reductions.bounds import (
    GREEDY_CROSSOVER,
    ONE_MINUS_INV_E,
    best_known_ratio,
    greedy_ratio_bound,
    table1_rows,
)


class TestGreedyBound:
    def test_small_k_is_one_minus_inv_e(self):
        assert greedy_ratio_bound(1, 100) == pytest.approx(ONE_MINUS_INV_E)
        assert greedy_ratio_bound(30, 100) == pytest.approx(ONE_MINUS_INV_E)

    def test_large_k_is_quadratic(self):
        assert greedy_ratio_bound(80, 100) == pytest.approx(1 - 0.2**2)
        assert greedy_ratio_bound(100, 100) == pytest.approx(1.0)

    def test_crossover_point(self):
        # Below the crossover the constant wins, above it the quadratic.
        n = 10_000
        below = int((GREEDY_CROSSOVER - 0.01) * n)
        above = int((GREEDY_CROSSOVER + 0.01) * n)
        assert greedy_ratio_bound(below, n) == pytest.approx(ONE_MINUS_INV_E)
        assert greedy_ratio_bound(above, n) > ONE_MINUS_INV_E

    def test_crossover_solves_equation(self):
        assert (1 - GREEDY_CROSSOVER) ** 2 == pytest.approx(1 / math.e)

    def test_monotone_in_k(self):
        n = 50
        bounds = [greedy_ratio_bound(k, n) for k in range(n + 1)]
        assert bounds == sorted(bounds)

    def test_validation(self):
        with pytest.raises(SolverError):
            greedy_ratio_bound(5, 0)
        with pytest.raises(SolverError):
            greedy_ratio_bound(-1, 10)
        with pytest.raises(SolverError):
            greedy_ratio_bound(11, 10)


class TestBestKnown:
    def test_sdp_regime(self):
        ratio, method = best_known_ratio(10, 100)
        assert ratio == pytest.approx(0.92)
        assert "SDP" in method

    def test_mid_regime(self):
        ratio, method = best_known_ratio(73, 100)
        assert ratio == pytest.approx(0.93)
        assert "SDP" in method

    def test_greedy_regime(self):
        ratio, method = best_known_ratio(90, 100)
        assert ratio == pytest.approx(greedy_ratio_bound(90, 100))
        assert "greedy" in method

    def test_best_known_never_below_greedy(self):
        for k in range(0, 101, 5):
            best, _ = best_known_ratio(k, 100)
            assert best >= greedy_ratio_bound(k, 100) - 1e-12


class TestTable1:
    def test_five_rows(self):
        rows = table1_rows()
        assert len(rows) == 5
        assert rows[0].k_over_n == "o(1)"
        assert "SDP" in rows[0].method
        assert "greedy" in rows[-1].method
