"""Tests for the analysis curves and the inventory audit."""

import numpy as np
import pytest

from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.errors import SolverError
from repro.evaluation.audit import audit_retained_set
from repro.evaluation.curves import (
    coverage_curve,
    marginal_gain_profile,
    threshold_curve,
)


class TestCoverageCurve:
    def test_rows_and_dominance(self, medium_graph, variant):
        rows = coverage_curve(
            medium_graph, variant, fractions=(0.1, 0.5, 0.9), seed=1
        )
        assert [row["k/n"] for row in rows] == [0.1, 0.5, 0.9]
        for row in rows:
            assert row["greedy"] >= row["topk-weight"] - 1e-9
            assert row["greedy"] >= row["topk-coverage"] - 1e-9
            assert row["greedy"] >= row["random"] - 1e-9

    def test_matches_direct_solves(self, small_graph, variant):
        rows = coverage_curve(
            small_graph, variant, fractions=(0.5,),
            algorithms=("greedy", "topk-weight"),
        )
        k = rows[0]["k"]
        direct = greedy_solve(small_graph, k, variant)
        assert rows[0]["greedy"] == pytest.approx(direct.cover, abs=1e-9)

    def test_monotone_in_fraction(self, medium_graph, variant):
        rows = coverage_curve(
            medium_graph, variant, fractions=(0.1, 0.3, 0.5, 0.7),
            algorithms=("greedy",),
        )
        covers = [row["greedy"] for row in rows]
        assert covers == sorted(covers)

    def test_algorithm_subset(self, small_graph, variant):
        rows = coverage_curve(
            small_graph, variant, fractions=(0.5,), algorithms=("random",),
        )
        assert set(rows[0]) == {"k/n", "k", "random"}

    def test_invalid_fraction(self, small_graph):
        with pytest.raises(SolverError, match="fraction"):
            coverage_curve(small_graph, "independent", fractions=(0.0,))

    def test_unknown_algorithm(self, small_graph):
        with pytest.raises(SolverError, match="unknown algorithms"):
            coverage_curve(
                small_graph, "independent", algorithms=("greedy", "magic"),
            )


class TestThresholdCurve:
    def test_rows(self, medium_graph, variant):
        rows = threshold_curve(
            medium_graph, variant, thresholds=(0.4, 0.6, 0.8)
        )
        sizes = [row["greedy"] for row in rows]
        assert sizes == sorted(sizes)
        for row in rows:
            assert row["greedy_cover"] >= row["threshold"] - 1e-9
            assert row["greedy"] <= row["topk-weight"]
            assert row["greedy"] <= row["topk-coverage"]

    def test_without_baselines(self, small_graph, variant):
        rows = threshold_curve(
            small_graph, variant, thresholds=(0.5,),
            include_baselines=False,
        )
        assert "topk-weight" not in rows[0]


class TestMarginalGainProfile:
    def test_diminishing_returns(self, medium_graph, variant):
        gains = marginal_gain_profile(medium_graph, variant)
        assert gains.shape == (as_csr(medium_graph).n_items,)
        # Greedy gains are nonincreasing (submodularity).
        assert np.all(np.diff(gains) <= 1e-9)
        assert gains.sum() == pytest.approx(1.0)

    def test_truncation(self, small_graph, variant):
        gains = marginal_gain_profile(small_graph, variant, k=5)
        assert gains.shape == (5,)


class TestAudit:
    def test_figure1_audit(self, figure1, variant):
        audit = audit_retained_set(figure1, ["B", "D"], variant)
        assert audit.total_cover == pytest.approx(0.873)
        assert audit.total_lost == pytest.approx(0.127)
        # Worst loss is A (0.33 * 1/3 = 0.11 lost).
        assert audit.lost_demand[0].item == "A"
        assert audit.lost_demand[0].lost == pytest.approx(0.11)
        assert audit.lost_demand[0].coverage_ratio == pytest.approx(2 / 3)
        # No orphans: every dropped item has a retained alternative.
        assert audit.orphaned_items == []

    def test_orphans_detected(self, figure1, variant):
        audit = audit_retained_set(figure1, ["A"], variant)
        # With only A retained, no dropped item has a retained
        # alternative (nothing points at A except A's own demand).
        assert set(audit.orphaned_items) == {"B", "C", "D", "E"}

    def test_load_bearing_contribution_is_removal_delta(
        self, medium_graph, variant
    ):
        result = greedy_solve(medium_graph, 12, variant)
        audit = audit_retained_set(medium_graph, result.retained, variant)
        full_cover = cover(medium_graph, result.retained, variant)
        for row in audit.load_bearing:
            without = [i for i in result.retained if i != row.item]
            reduced = cover(medium_graph, without, variant)
            assert row.total_contribution == pytest.approx(
                full_cover - reduced, abs=1e-9
            )

    def test_figure1_load_bearing(self, figure1, variant):
        audit = audit_retained_set(figure1, ["B", "D"], variant)
        by_item = {row.item: row for row in audit.load_bearing}
        # B absorbs C fully (0.22) and 2/3 of A (0.22) = 0.44.
        assert by_item["B"].absorbed_demand == pytest.approx(0.44)
        assert by_item["B"].total_contribution == pytest.approx(0.66)
        # D absorbs 0.9 of E.
        assert by_item["D"].absorbed_demand == pytest.approx(0.153)
        assert audit.load_bearing[0].item == "B"

    def test_top_truncation(self, medium_graph, variant):
        audit = audit_retained_set(
            medium_graph, list(range(20)), variant, top=5
        )
        assert len(audit.lost_demand) == 5
        assert len(audit.load_bearing) == 5

    def test_negative_top_rejected(self, figure1):
        with pytest.raises(SolverError, match="top"):
            audit_retained_set(figure1, ["A"], "independent", top=-1)

    def test_summary_text(self, figure1, variant):
        audit = audit_retained_set(figure1, ["B", "D"], variant)
        text = audit.summary()
        assert "cover 0.8730" in text
        assert "orphaned" in text

    def test_retained_items_mutually_covering(self, variant):
        # Two retained items that cover each other: own_term shrinks
        # but removal delta stays exact.
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"x": 0.5, "y": 0.5},
            edges=[("x", "y", 0.8), ("y", "x", 0.6)],
        )
        audit = audit_retained_set(g, ["x", "y"], variant)
        full = cover(g, ["x", "y"], variant)
        for row in audit.load_bearing:
            other = "y" if row.item == "x" else "x"
            assert row.total_contribution == pytest.approx(
                full - cover(g, [other], variant), abs=1e-12
            )
