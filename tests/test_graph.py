"""Tests for repro.core.graph.PreferenceGraph."""


import pytest

from repro.core.graph import PreferenceGraph
from repro.errors import GraphValidationError, UnknownItemError


@pytest.fixture
def graph() -> PreferenceGraph:
    g = PreferenceGraph()
    g.add_item("A", 0.6)
    g.add_item("B", 0.4)
    g.add_edge("A", "B", 0.5)
    return g


class TestConstruction:
    def test_add_item_and_weight(self, graph):
        assert graph.node_weight("A") == 0.6
        assert graph.n_items == 2

    def test_re_add_overwrites_weight_keeps_edges(self, graph):
        graph.add_item("A", 0.3)
        assert graph.node_weight("A") == 0.3
        assert graph.edge_weight("A", "B") == 0.5

    def test_negative_node_weight_rejected(self):
        g = PreferenceGraph()
        with pytest.raises(GraphValidationError, match="nonnegative"):
            g.add_item("A", -0.1)

    def test_nan_node_weight_rejected(self):
        g = PreferenceGraph()
        with pytest.raises(GraphValidationError):
            g.add_item("A", float("nan"))

    def test_edge_requires_existing_endpoints(self, graph):
        with pytest.raises(UnknownItemError):
            graph.add_edge("A", "Z", 0.5)
        with pytest.raises(UnknownItemError):
            graph.add_edge("Z", "A", 0.5)

    def test_self_edge_rejected(self, graph):
        with pytest.raises(GraphValidationError, match="self-edge"):
            graph.add_edge("A", "A", 0.5)

    @pytest.mark.parametrize("weight", [0.0, -0.5, 1.5, float("nan")])
    def test_bad_edge_weight_rejected(self, graph, weight):
        with pytest.raises(GraphValidationError):
            graph.add_edge("B", "A", weight)

    def test_edge_weight_one_allowed(self, graph):
        graph.add_edge("B", "A", 1.0)
        assert graph.edge_weight("B", "A") == 1.0

    def test_duplicate_edge_overwrites_not_counts(self, graph):
        graph.add_edge("A", "B", 0.7)
        assert graph.n_edges == 1
        assert graph.edge_weight("A", "B") == 0.7

    def test_from_weights_normalize(self):
        g = PreferenceGraph.from_weights({"A": 3, "B": 1}, normalize=True)
        assert g.node_weight("A") == pytest.approx(0.75)
        assert g.total_node_weight() == pytest.approx(1.0)

    def test_normalize_zero_total_raises(self):
        g = PreferenceGraph.from_weights({"A": 0.0})
        with pytest.raises(GraphValidationError, match="normalize"):
            g.normalize_node_weights()

    def test_remove_edge(self, graph):
        graph.remove_edge("A", "B")
        assert graph.n_edges == 0
        assert not graph.has_edge("A", "B")

    def test_remove_missing_edge_raises(self, graph):
        with pytest.raises(UnknownItemError):
            graph.remove_edge("B", "A")


class TestInspection:
    def test_dunder_protocol(self, graph):
        assert len(graph) == 2
        assert "A" in graph
        assert "Z" not in graph
        assert set(iter(graph)) == {"A", "B"}

    def test_neighbors_returns_copy(self, graph):
        neighbors = graph.neighbors("A")
        assert neighbors == {"B": 0.5}
        neighbors["B"] = 99
        assert graph.edge_weight("A", "B") == 0.5

    def test_in_neighbors(self, graph):
        assert graph.in_neighbors("B") == {"A": 0.5}
        assert graph.in_neighbors("A") == {}

    def test_degrees(self, graph):
        assert graph.out_degree("A") == 1
        assert graph.in_degree("B") == 1
        assert graph.in_degree("A") == 0
        assert graph.max_in_degree() == 1

    def test_out_weight_sum(self, graph):
        assert graph.out_weight_sum("A") == pytest.approx(0.5)
        assert graph.out_weight_sum("B") == 0.0

    def test_unknown_item_errors(self, graph):
        with pytest.raises(UnknownItemError):
            graph.node_weight("Z")
        with pytest.raises(UnknownItemError):
            graph.neighbors("Z")
        with pytest.raises(UnknownItemError):
            graph.edge_weight("A", "Z")

    def test_edges_iteration(self, graph):
        assert list(graph.edges()) == [("A", "B", 0.5)]

    def test_repr(self, graph):
        assert "n_items=2" in repr(graph)


class TestValidation:
    def test_valid_graph_passes(self, graph):
        graph.validate("independent")
        graph.validate("normalized")

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError, match="no items"):
            PreferenceGraph().validate()

    def test_weights_must_sum_to_one(self):
        g = PreferenceGraph.from_weights({"A": 0.6, "B": 0.6})
        with pytest.raises(GraphValidationError, match="sum to 1"):
            g.validate()

    def test_normalized_out_sum_check(self):
        g = PreferenceGraph.from_weights(
            {"A": 0.5, "B": 0.3, "C": 0.2},
            edges=[("A", "B", 0.7), ("A", "C", 0.6)],
        )
        g.validate("independent")  # fine: no out-sum restriction
        with pytest.raises(GraphValidationError, match="sum to <= 1"):
            g.validate("normalized")

    def test_out_sum_exactly_one_accepted(self):
        g = PreferenceGraph.from_weights(
            {"A": 0.5, "B": 0.3, "C": 0.2},
            edges=[("A", "B", 0.5), ("A", "C", 0.5)],
        )
        g.validate("normalized")


class TestConversions:
    def test_networkx_roundtrip(self, graph):
        nxg = graph.to_networkx()
        back = PreferenceGraph.from_networkx(nxg)
        assert back.node_weight("A") == graph.node_weight("A")
        assert list(back.edges()) == list(graph.edges())

    def test_from_networkx_requires_weights(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_node("A")
        with pytest.raises(GraphValidationError, match="weight"):
            PreferenceGraph.from_networkx(nxg)

    def test_from_networkx_requires_edge_weights(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_node("A", weight=0.5)
        nxg.add_node("B", weight=0.5)
        nxg.add_edge("A", "B")
        with pytest.raises(GraphValidationError, match="weight"):
            PreferenceGraph.from_networkx(nxg)

    def test_copy_is_deep(self, graph):
        clone = graph.copy()
        clone.add_item("C", 0.0)
        clone.remove_edge("A", "B")
        assert "C" not in graph
        assert graph.has_edge("A", "B")

    def test_to_csr_preserves_structure(self, graph):
        csr = graph.to_csr()
        assert csr.n_items == 2
        assert csr.n_edges == 1
        back = csr.to_preference_graph()
        assert back.node_weight("A") == graph.node_weight("A")
        assert list(back.edges()) == list(graph.edges())
