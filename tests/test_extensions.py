"""Tests for the future-work extensions: revenue, capacity, incremental."""

import numpy as np
import pytest

from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.errors import SolverError
from repro.extensions.capacity import budget_spent, capacity_greedy_solve
from repro.extensions.incremental import IncrementalSolver
from repro.extensions.revenue import (
    expected_revenue,
    revenue_greedy_solve,
    revenue_scaled_graph,
)
from repro.workloads.graphs import random_preference_graph


class TestRevenue:
    def test_uniform_revenue_matches_plain_greedy(self, medium_graph, variant):
        n = as_csr(medium_graph).n_items
        uniform = np.ones(n)
        scaled = revenue_greedy_solve(medium_graph, 25, variant, uniform)
        plain = greedy_solve(medium_graph, 25, variant)
        assert scaled.retained == plain.retained
        assert scaled.cover == pytest.approx(plain.cover, abs=1e-9)

    def test_revenue_shifts_selection(self, variant):
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"popular": 0.9, "niche": 0.1}
        )
        plain = greedy_solve(g, 1, variant)
        assert plain.retained == ["popular"]
        rich = revenue_greedy_solve(
            g, 1, variant, {"popular": 1.0, "niche": 100.0}
        )
        assert rich.retained == ["niche"]

    def test_expected_revenue_consistent(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        revenues = np.random.default_rng(0).uniform(1, 10, csr.n_items)
        result = revenue_greedy_solve(medium_graph, 20, variant, revenues)
        direct = expected_revenue(
            medium_graph, result.retained, variant, revenues
        )
        assert result.cover == pytest.approx(direct, abs=1e-9)

    def test_revenue_mapping_by_item_id(self, figure1):
        revenues = {item: 1.0 for item in figure1.items()}
        result = revenue_greedy_solve(figure1, 2, "normalized", revenues)
        assert result.retained == ["B", "D"]

    def test_missing_revenue_rejected(self, figure1):
        with pytest.raises(SolverError, match="no revenue"):
            revenue_greedy_solve(figure1, 1, "normalized", {"A": 1.0})

    def test_negative_revenue_rejected(self, figure1):
        revenues = {item: -1.0 for item in figure1.items()}
        with pytest.raises(SolverError, match="nonnegative"):
            revenue_greedy_solve(figure1, 1, "normalized", revenues)

    def test_wrong_shape_rejected(self, figure1):
        with pytest.raises(SolverError, match="shape"):
            revenue_greedy_solve(figure1, 1, "normalized", np.ones(3))

    def test_scaled_graph_preserves_edges(self, figure1):
        scaled = revenue_scaled_graph(figure1, {i: 2.0 for i in figure1})
        csr = as_csr(figure1)
        assert scaled.n_edges == csr.n_edges
        np.testing.assert_allclose(scaled.node_weight, csr.node_weight * 2)


class TestCapacity:
    def test_respects_budget(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        costs = np.random.default_rng(1).uniform(0.5, 2.0, csr.n_items)
        result = capacity_greedy_solve(medium_graph, 20.0, variant, costs)
        assert budget_spent(medium_graph, result.retained, costs) <= 20.0 + 1e-9

    def test_unit_costs_reduce_to_cardinality(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        result = capacity_greedy_solve(
            medium_graph, 15.0, variant, np.ones(csr.n_items)
        )
        plain = greedy_solve(medium_graph, 15, variant)
        assert result.cover == pytest.approx(plain.cover, abs=1e-9)
        assert result.k == 15

    def test_cover_exact(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        costs = np.random.default_rng(2).uniform(0.5, 2.0, csr.n_items)
        result = capacity_greedy_solve(medium_graph, 12.0, variant, costs)
        assert result.cover == pytest.approx(
            cover(medium_graph, result.retained, variant), abs=1e-9
        )

    def test_cheap_valuable_items_preferred(self, variant):
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"expensive": 0.5, "cheap1": 0.25, "cheap2": 0.25}
        )
        costs = {"expensive": 10.0, "cheap1": 1.0, "cheap2": 1.0}
        result = capacity_greedy_solve(g, 2.0, variant, costs)
        assert set(result.retained) == {"cheap1", "cheap2"}
        assert result.cover == pytest.approx(0.5)

    def test_zero_budget(self, figure1, variant):
        costs = {item: 1.0 for item in figure1.items()}
        result = capacity_greedy_solve(figure1, 0.0, variant, costs)
        assert result.retained == []
        assert result.cover == 0.0

    def test_nonpositive_cost_rejected(self, figure1):
        costs = {item: 0.0 for item in figure1.items()}
        with pytest.raises(SolverError, match="positive"):
            capacity_greedy_solve(figure1, 1.0, "normalized", costs)

    def test_negative_budget_rejected(self, figure1):
        costs = {item: 1.0 for item in figure1.items()}
        with pytest.raises(SolverError, match="budget"):
            capacity_greedy_solve(figure1, -1.0, "normalized", costs)


class TestIncremental:
    def make_solver(self, variant, k=20, n=150):
        graph = random_preference_graph(n, variant=variant, seed=8)
        return IncrementalSolver(
            graph.to_preference_graph(), k=k, variant=variant
        )

    def test_initial_solve_matches_plain_greedy(self, variant):
        solver = self.make_solver(variant)
        result = solver.solve()
        plain = greedy_solve(solver.graph, solver.k, variant)
        assert result.retained == plain.retained
        assert result.cover == pytest.approx(plain.cover, abs=1e-9)

    def test_resolve_after_noop_reuses_everything(self, variant):
        solver = self.make_solver(variant)
        solver.solve()
        result = solver.resolve()
        assert solver.last_reused_prefix == solver.k
        fresh = greedy_solve(solver.graph, solver.k, variant)
        assert result.retained == fresh.retained

    def test_resolve_after_update_matches_fresh_greedy(self, variant):
        solver = self.make_solver(variant)
        first = solver.solve()
        # Promote a non-retained item by shifting weight from the top
        # retained item (keeps total weight at 1).
        winner = first.retained[0]
        loser = [i for i in solver.graph.items()
                 if i not in first.retained][0]
        shift = solver.graph.node_weight(winner) * 0.8
        solver.update_node_weight(
            winner, solver.graph.node_weight(winner) - shift
        )
        solver.update_node_weight(
            loser, solver.graph.node_weight(loser) + shift
        )
        second = solver.resolve()
        fresh = greedy_solve(solver.graph, solver.k, variant)
        assert second.retained == fresh.retained
        assert second.cover == pytest.approx(fresh.cover, abs=1e-9)
        # The very first pick changed, so nothing could be reused.
        assert solver.last_reused_prefix == 0

    def test_small_update_reuses_prefix(self, variant):
        solver = self.make_solver(variant)
        first = solver.solve()
        # Perturb the weight of the *last* retained item downward a bit;
        # earlier picks stay optimal.
        target = first.retained[-1]
        other = [i for i in solver.graph.items()
                 if i not in first.retained][0]
        delta = solver.graph.node_weight(target) * 0.01
        solver.update_node_weight(
            target, solver.graph.node_weight(target) - delta
        )
        solver.update_node_weight(
            other, solver.graph.node_weight(other) + delta
        )
        second = solver.resolve()
        fresh = greedy_solve(solver.graph, solver.k, variant)
        assert second.retained == fresh.retained
        assert solver.last_reused_prefix >= solver.k - 5

    def test_edge_update_consistency(self, variant):
        solver = self.make_solver(variant, k=10, n=60)
        solver.solve()
        graph = solver.graph
        # Remove one existing edge and re-solve.
        source, target, _w = next(iter(graph.edges()))
        solver.remove_edge(source, target)
        second = solver.resolve()
        fresh = greedy_solve(graph, 10, variant)
        assert second.retained == fresh.retained

    def test_add_item(self, variant):
        solver = self.make_solver(variant, k=10, n=60)
        solver.solve()
        # Shift 10% of an existing item's mass onto a new item.
        donor = next(iter(solver.graph.items()))
        mass = solver.graph.node_weight(donor) * 0.1
        solver.update_node_weight(
            donor, solver.graph.node_weight(donor) - mass
        )
        solver.add_item("brand-new", mass)
        second = solver.resolve()
        fresh = greedy_solve(solver.graph, 10, variant)
        assert second.retained == fresh.retained

    def test_add_existing_item_rejected(self, variant):
        solver = self.make_solver(variant, k=5, n=30)
        existing = next(iter(solver.graph.items()))
        with pytest.raises(SolverError, match="already exists"):
            solver.add_item(existing, 0.0)

    def test_requires_mutable_graph(self, medium_graph):
        with pytest.raises(SolverError, match="mutable"):
            IncrementalSolver(medium_graph, k=5, variant="independent")
