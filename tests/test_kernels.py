"""Kernel registry resolution and numpy-vs-compiled parity.

The dispatch layer must be invisible: every backend computes identical
gains (to 1e-12) and *identical selections* for all three strategies and
both variants.  The compiled-backend half of the suite runs only where
numba is importable; its absence must silently resolve to numpy.
"""

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.kernels import (
    KERNELS_ENV_VAR,
    KernelBackend,
    NUMPY_KERNELS,
    available_backends,
    get_kernels,
)
from repro.core.threshold import greedy_threshold_solve
from repro.errors import SolverError

HAS_NUMBA = "numba" in available_backends()
needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert get_kernels("numpy") is NUMPY_KERNELS

    def test_default_resolves(self):
        backend = get_kernels()
        assert backend.name in available_backends()

    def test_auto_prefers_compiled_when_present(self):
        backend = get_kernels("auto")
        assert backend.name == ("numba" if HAS_NUMBA else "numpy")

    def test_missing_numba_degrades_silently(self):
        # Requesting the compiled backend must never fail: hosts without
        # numba get the numpy reference implementation with no warning.
        backend = get_kernels("numba")
        assert backend.name == ("numba" if HAS_NUMBA else "numpy")

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "numpy")
        assert get_kernels().name == "numpy"
        monkeypatch.setenv(KERNELS_ENV_VAR, "definitely-not-a-backend")
        with pytest.raises(SolverError, match="kernel backend"):
            get_kernels()

    def test_explicit_instance_passes_through(self):
        assert isinstance(NUMPY_KERNELS, KernelBackend)
        assert get_kernels(NUMPY_KERNELS) is NUMPY_KERNELS

    def test_unknown_name_rejected(self):
        with pytest.raises(SolverError, match="kernel backend"):
            get_kernels("fortran")

    def test_greedy_state_accepts_backend_objects(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant,
                            kernels=NUMPY_KERNELS)
        assert state.kernels is NUMPY_KERNELS


class TestNumpyKernelInternals:
    """The numpy backend is the reference; pin its block/scalar laws."""

    def test_block_matches_scalar(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        state = GreedyState(csr, variant, kernels="numpy")
        for v in (1, 50, 200):
            state.add_node(v)
        gains = state.gains_all()
        for v in range(0, csr.n_items, 37):
            assert gains[v] == pytest.approx(state.gain(v), abs=1e-12)

    def test_add_node_matches_gain(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        state = GreedyState(csr, variant, kernels="numpy")
        for v in (3, 9, 400):
            predicted = state.gain(v)
            assert state.add_node(v) == pytest.approx(predicted, abs=1e-12)

    def test_fanout_update_counts_edges(self, variant):
        from repro.core.kernels import _np_fanout_update
        from repro.workloads.graphs import random_preference_graph

        csr = as_csr(random_preference_graph(60, variant=variant, seed=5))
        gains = np.zeros(csr.n_items)
        u_nodes = np.array([0, 1, 2], dtype=np.int64)
        delta = np.array([0.1, 0.2, 0.3])
        total = _np_fanout_update(
            gains, u_nodes, delta, csr.out_ptr, csr.out_dst, csr.out_weight
        )
        expected = int(
            (csr.out_ptr[u_nodes + 1] - csr.out_ptr[u_nodes]).sum()
        )
        assert total == expected


@needs_numba
class TestCompiledParity:
    """numpy vs numba: gains to 1e-12, selections exactly."""

    def test_gains_all_parity(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        ref = GreedyState(csr, variant, kernels="numpy")
        jit = GreedyState(csr, variant, kernels="numba")
        for v in (0, 25, 111):
            ref.add_node(v)
            jit.add_node(v)
        np.testing.assert_allclose(
            ref.gains_all(), jit.gains_all(), atol=1e-12
        )

    def test_gains_range_parity(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        ref = GreedyState(csr, variant, kernels="numpy")
        jit = GreedyState(csr, variant, kernels="numba")
        np.testing.assert_allclose(
            ref.gains_range(100, 400), jit.gains_range(100, 400), atol=1e-12
        )

    @pytest.mark.parametrize("strategy", ["naive", "lazy", "accelerated"])
    def test_selections_identical(self, medium_graph, variant, strategy):
        ref = greedy_solve(medium_graph, k=25, variant=variant,
                           strategy=strategy, kernels="numpy")
        jit = greedy_solve(medium_graph, k=25, variant=variant,
                           strategy=strategy, kernels="numba")
        assert jit.retained == ref.retained
        assert jit.cover == pytest.approx(ref.cover, abs=1e-12)

    def test_threshold_selections_identical(self, medium_graph, variant):
        ref = greedy_threshold_solve(medium_graph, threshold=0.5,
                                     variant=variant, kernels="numpy")
        jit = greedy_threshold_solve(medium_graph, threshold=0.5,
                                     variant=variant, kernels="numba")
        assert jit.retained == ref.retained


class TestStrategyAgreementUnderExplicitKernels:
    """All three strategies agree regardless of the kernel backend name."""

    @pytest.mark.parametrize("name", ["numpy", "auto"])
    def test_strategies_agree(self, medium_graph, variant, name):
        results = {
            strategy: greedy_solve(
                medium_graph, k=15, variant=variant, strategy=strategy,
                kernels=name,
            )
            for strategy in ("naive", "lazy", "accelerated")
        }
        naive = results["naive"]
        for strategy, result in results.items():
            assert result.retained == naive.retained, strategy
            assert result.cover == pytest.approx(naive.cover, abs=1e-9)
