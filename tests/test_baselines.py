"""Tests for the TopK-W / TopK-C / Random baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    random_solve,
    top_k_coverage_order,
    top_k_coverage_solve,
    top_k_coverage_threshold,
    top_k_weight_order,
    top_k_weight_solve,
    top_k_weight_threshold,
)
from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.errors import SolverError


class TestTopKWeight:
    def test_selects_heaviest(self, figure1, variant):
        result = top_k_weight_solve(figure1, 2, variant)
        assert result.retained == ["A", "B"]  # 0.33 and 0.22 (tie: B first)

    def test_figure1_example_value(self, figure1):
        # Example 1.1: top sellers {A, B} cover about 77%.
        result = top_k_weight_solve(figure1, 2, "normalized")
        assert result.cover == pytest.approx(0.77)

    def test_order_is_descending(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        order = top_k_weight_order(csr)
        weights = csr.node_weight[order]
        assert np.all(np.diff(weights) <= 1e-15)

    def test_k_out_of_range(self, figure1):
        with pytest.raises(SolverError):
            top_k_weight_solve(figure1, 99, "independent")


class TestTopKCoverage:
    def test_ranks_by_singleton_gain(self, figure1, variant):
        result = top_k_coverage_solve(figure1, 1, variant)
        # B alone covers 0.66 - the largest singleton cover.
        assert result.retained == ["B"]

    def test_ignores_overlap_unlike_greedy(self, variant):
        # Construct two near-duplicate covers: u1 and u2 both cover the
        # heavy item v completely; TopK-C picks both, greedy diversifies.
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"v": 0.6, "u1": 0.05, "u2": 0.05, "w": 0.3},
            edges=[("v", "u1", 1.0 if variant == "normalized" else 0.99)]
            + ([("v", "u2", 0.99)] if variant == "independent" else []),
        )
        if variant == "independent":
            topc = top_k_coverage_solve(g, 2, variant)
            greedy = greedy_solve(g, 2, variant)
            assert set(topc.retained) == {"u1", "u2"}
            assert "w" in greedy.retained
            assert greedy.cover > topc.cover

    def test_coverage_order_consistent_with_gains(self, medium_graph, variant):
        order = top_k_coverage_order(medium_graph, variant)
        from repro.core.gain import GreedyState

        state = GreedyState(as_csr(medium_graph), variant)
        gains = state.gains_all()
        assert np.all(np.diff(gains[order]) <= 1e-12)


class TestRandom:
    def test_respects_k(self, medium_graph, variant):
        result = random_solve(medium_graph, 25, variant, seed=0)
        assert len(result.retained) == 25
        assert len(set(result.retained)) == 25

    def test_seed_reproducible(self, medium_graph, variant):
        a = random_solve(medium_graph, 25, variant, seed=5)
        b = random_solve(medium_graph, 25, variant, seed=5)
        assert a.retained == b.retained

    def test_best_of_draws_improves(self, medium_graph, variant):
        single = random_solve(medium_graph, 20, variant, seed=9, draws=1)
        best10 = random_solve(medium_graph, 20, variant, seed=9, draws=10)
        assert best10.cover >= single.cover - 1e-12

    def test_draws_validation(self, figure1):
        with pytest.raises(SolverError, match="draws"):
            random_solve(figure1, 2, "independent", draws=0)

    def test_greedy_dominates_random(self, medium_graph, variant):
        greedy = greedy_solve(medium_graph, 30, variant)
        rand = random_solve(medium_graph, 30, variant, seed=1, draws=10)
        assert greedy.cover >= rand.cover


class TestThresholdAdapted:
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7])
    def test_prefix_is_smallest(self, medium_graph, variant, threshold):
        result = top_k_weight_threshold(medium_graph, threshold, variant)
        assert result.cover >= threshold - 1e-9
        if result.k > 0:
            order = top_k_weight_order(medium_graph)
            shorter = cover(medium_graph, order[: result.k - 1], variant)
            assert shorter < threshold

    def test_greedy_needs_fewest_items(self, medium_graph, variant):
        # The Figure 4f claim: the greedy threshold solver produces a
        # (weakly) smaller retained set than either adapted baseline.
        from repro.core.threshold import greedy_threshold_solve

        greedy = greedy_threshold_solve(medium_graph, 0.6, variant)
        w = top_k_weight_threshold(medium_graph, 0.6, variant)
        c = top_k_coverage_threshold(medium_graph, 0.6, variant)
        assert greedy.k <= w.k
        assert greedy.k <= c.k

    def test_threshold_validation(self, figure1):
        with pytest.raises(SolverError, match="threshold"):
            top_k_weight_threshold(figure1, 1.5, "independent")

    def test_zero_threshold_empty_set(self, medium_graph, variant):
        result = top_k_weight_threshold(medium_graph, 0.0, variant)
        assert result.k == 0
