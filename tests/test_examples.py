"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess (fresh interpreter, the way a
user would run it) and its key output lines are checked.  These are the
slowest tests in the suite; they guard the documented entry points.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "['B', 'D']" in out or "B" in out
        assert "0.873" in out
        assert "confirms optimality" in out

    def test_clickstream_to_graph(self):
        out = run_example("clickstream_to_graph.py")
        assert "selected variant    : normalized" in out
        assert "rebuilt the identical graph" in out

    def test_express_delivery(self):
        out = run_example("express_delivery.py")
        assert "Express-delivery stocking policies" in out
        assert "greedy (paper)" in out

    def test_regional_launch(self):
        out = run_example("regional_launch.py")
        assert "variant selected from data: normalized" in out
        assert "InventoryReducer: ship" in out

    def test_maintenance_reduction(self):
        out = run_example("maintenance_reduction.py")
        assert "greedy keeps" in out
        assert "week 4" in out

    def test_end_to_end_pipeline(self):
        out = run_example("end_to_end_pipeline.py")
        assert "Figure 2: end-to-end flow" in out
        assert "revenue-aware retained set" in out
        assert "storage-budget selection" in out

    def test_assortment_over_time(self):
        out = run_example("assortment_over_time.py")
        assert "week" in out
        assert "incremental solver" in out

    def test_category_quotas(self):
        out = run_example("category_quotas.py")
        assert "Department representation" in out
        assert "price of department coverage" in out

    def test_reproduce_figures_fast(self):
        out = run_example("reproduce_figures.py", timeout=400)
        # run_example passes positional script name only; --fast variant
        # exercised separately below.
        assert "Figure 4a" in out

    def test_reproduce_figures_fast_flag(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "reproduce_figures.py"),
             "--fast"],
            capture_output=True, text=True, timeout=400,
        )
        assert result.returncode == 0, result.stderr
        for marker in ("Table 2", "Figure 4a", "Figure 4c", "Figure 4d",
                       "Figure 4e", "Figure 4f"):
            assert marker in result.stdout
