"""Tests for the fault-tolerant serving runtime (repro.serving.runtime).

Covers the resilience surface layered over the assortment service:
seeded-jitter retry schedules, the refresh-path circuit breaker's full
state machine, per-query deadline propagation through the frontend
micro-batcher (including the all-expired batch that must not touch the
snapshot), the monotone degradation ladder fresh → stale → static →
shed, warm-restart snapshot persistence with corrupt-file fallback, and
the ``repro serve`` exit-code contract (0 healthy / 3 degraded /
4 shed).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cli import main
from repro.clickstream.drift import random_delta
from repro.core.cover import item_coverage
from repro.errors import DeadlineExceeded, ReproError, ServingError
from repro.observability import MetricsRegistry
from repro.resilience import FaultInjector, inject_faults
from repro.serving import (
    AssortmentService,
    CircuitBreaker,
    RetryPolicy,
    ServingFrontend,
    ServingRuntime,
    SnapshotPersister,
    Tier,
)
from repro.workloads.graphs import random_preference_graph


@pytest.fixture(autouse=True)
def _suppress_ambient(request):
    """Shield these deterministic tests from ambient ``REPRO_FAULTS``.

    Tests marked ``ambient_chaos`` opt out — they drive the CLI under
    an env-provided spec and need the ambient injector observable.
    """
    if request.node.get_closest_marker("ambient_chaos"):
        yield
        return
    with inject_faults(None):
        yield


def make_service(variant="independent", n=60, k=8, seed=3, **kwargs):
    graph = random_preference_graph(n, variant=variant, seed=seed)
    return AssortmentService(graph, variant=variant, k=k, **kwargs)


def fast_runtime(service, **kwargs):
    """A runtime with no real sleeping and a twitchy breaker."""
    kwargs.setdefault(
        "retry",
        RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
    )
    kwargs.setdefault(
        "breaker",
        CircuitBreaker(window=4, min_calls=2, reset_timeout_s=0.0),
    )
    return ServingRuntime(service, **kwargs)


def next_delta(service, seed=11):
    return random_delta(
        service.graph, sigma=0.2, edge_churn=0.05, seed=seed,
        sequence=service.stats()["sequence"] + 1,
    )


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ServingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServingError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ServingError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ServingError):
            RetryPolicy(base_delay_s=-1.0)

    def test_delays_deterministic_given_seed(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert policy.delays() == policy.delays()
        other = RetryPolicy(max_attempts=5, seed=43)
        assert policy.delays() != other.delays()

    def test_backoff_growth_and_ceiling(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.4,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_call_retries_then_succeeds(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=7)
        attempts, slept, retried = [], [], []
        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise ServingError("boom")
            return "ok"
        out = policy.call(
            flaky,
            sleep=slept.append,
            on_retry=lambda a, e, d: retried.append((a, d)),
        )
        assert out == "ok"
        assert attempts == [1, 2, 3]
        assert slept == [d for _, d in retried]
        # the jittered schedule is replayed exactly on a second call
        assert slept == policy.delays()[:2]

    def test_call_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        def always(attempt):
            raise ServingError(f"attempt {attempt}")
        with pytest.raises(ServingError, match="attempt 2"):
            policy.call(always, sleep=lambda _: None)

    def test_non_repro_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        calls = []
        def bug(attempt):
            calls.append(attempt)
            raise ValueError("a genuine bug")
        with pytest.raises(ValueError):
            policy.call(bug, sleep=lambda _: None)
        assert calls == [1]


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        kwargs.setdefault("window", 4)
        kwargs.setdefault("min_calls", 2)
        kwargs.setdefault("failure_threshold", 0.5)
        kwargs.setdefault("reset_timeout_s", 10.0)
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_opens_after_failure_rate_crossed(self):
        breaker, _ = self._breaker()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # below min_calls
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_successes_keep_it_closed(self):
        breaker, _ = self._breaker()
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes_and_clears(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        clock["now"] = 11.0
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        # window was cleared: one more failure must not re-open
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # timeout restarted
        clock["now"] = 22.0
        assert breaker.allow()

    def test_state_gauge_and_transition_counters(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            window=4, min_calls=2, reset_timeout_s=0.0, metrics=metrics,
        )
        assert metrics.gauge("serving.breaker.state").value == 0
        breaker.record_failure()
        breaker.record_failure()
        assert metrics.gauge("serving.breaker.state").value == 1
        breaker.allow()
        assert metrics.gauge("serving.breaker.state").value == 2
        breaker.record_success()
        assert metrics.gauge("serving.breaker.state").value == 0
        assert metrics.counter("serving.breaker.open").value == 1
        assert metrics.counter("serving.breaker.closed").value == 1
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert snapshot["opened"] == 1 and snapshot["closed"] == 1


# ----------------------------------------------------------------------
# Degradation tiers
# ----------------------------------------------------------------------
class TestDegradationTiers:
    def test_fresh_answers_are_stamped(self):
        runtime = fast_runtime(make_service())
        snapshot = runtime.ensure()
        answer = runtime.answer(snapshot.graph.items[0])
        assert answer.tier is Tier.FRESH
        assert answer.staleness_s is not None and answer.staleness_s >= 0
        assert answer.sequence == snapshot.sequence
        assert answer.value == snapshot.covered_probability(answer.item)

    def test_failed_refresh_degrades_to_stale(self):
        service = make_service()
        runtime = fast_runtime(service)
        snapshot = runtime.ensure()
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            out = runtime.apply_delta(next_delta(service))
        assert out is snapshot  # last good snapshot keeps serving
        assert runtime.tier is Tier.STALE
        answer = runtime.answer(snapshot.graph.items[1])
        assert answer.tier is Tier.STALE
        assert answer.staleness_s is not None
        # stale answers still match the snapshot's own offline reference
        offline = item_coverage(
            snapshot.graph, snapshot.result.retained, snapshot.variant
        )
        assert answer.value == float(
            offline[snapshot.index_of(answer.item)]
        )

    def test_successful_refresh_resets_to_fresh(self):
        service = make_service()
        runtime = fast_runtime(service)
        runtime.ensure()
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            runtime.apply_delta(next_delta(service))
        assert runtime.tier is Tier.STALE
        refreshed = runtime.refresh()
        assert refreshed is not None
        assert runtime.tier is Tier.FRESH
        assert runtime.metrics.counter("serving.tier.fresh").value >= 1

    def test_cold_start_under_faults_serves_static(self):
        service = make_service(k=6)
        runtime = fast_runtime(service, static_k=5)
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            snapshot = runtime.ensure()
            assert runtime.tier is Tier.STATIC
            assert snapshot.result.strategy == "static-top-weight"
            answer = runtime.answer(snapshot.graph.items[0])
        assert answer.tier is Tier.STATIC
        assert answer.staleness_s is None and answer.sequence == -1
        # once faults clear, the self-warming read path solves for real
        recovered = runtime.answer(snapshot.graph.items[0])
        assert recovered.tier is Tier.FRESH
        # the static fallback is the top-K-by-weight assortment, and its
        # served vector still equals offline recomputation exactly
        csr = service.current_csr()
        expected = set(
            np.argsort(-np.asarray(csr.node_weight), kind="stable")[:5]
            .tolist()
        )
        assert set(
            int(i) for i in snapshot.result.retained_indices
        ) == expected
        offline = item_coverage(
            csr, snapshot.result.retained, service.variant
        )
        assert np.array_equal(snapshot.conditional, offline)

    def test_shed_without_static_fallback(self):
        service = make_service()
        runtime = fast_runtime(service, static_fallback=False)
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            with pytest.raises(ServingError, match="shedding"):
                runtime.ensure()
        assert runtime.tier is Tier.SHED
        assert runtime.shed_count == 1
        assert runtime.metrics.counter("serving.shed").value == 1

    def test_degradation_is_monotone_until_success(self):
        service = make_service()
        runtime = fast_runtime(service)
        runtime.ensure()
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            for step in range(4):
                before = runtime.tier
                runtime.apply_delta(next_delta(service, seed=step))
                assert runtime.tier >= before

    def test_breaker_short_circuits_repeated_failures(self):
        service = make_service()
        metrics = service.metrics
        runtime = fast_runtime(
            service,
            breaker=CircuitBreaker(
                window=4, min_calls=2, reset_timeout_s=1000.0,
            ),
        )
        runtime.ensure()
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            for step in range(5):
                runtime.apply_delta(next_delta(service, seed=step))
        assert runtime.breaker.state == "open"
        assert metrics.counter("serving.breaker.short_circuited").value >= 1
        # short-circuited episodes never reached the solver
        assert service.refresh_failures < 5 * runtime.retry.max_attempts

    def test_stale_sequence_deltas_still_drop(self):
        service = make_service()
        runtime = fast_runtime(service)
        runtime.ensure()
        delta = next_delta(service)
        runtime.apply_delta(delta)
        again = runtime.apply_delta(delta)  # duplicate sequence
        assert again is service.active
        assert service.metrics.counter("serving.deltas_stale").value == 1


# ----------------------------------------------------------------------
# Deadline propagation through the frontend
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_query_fails_fast_with_typed_error(self):
        service = make_service()
        item = service.current_csr().items[0]

        async def scenario():
            frontend = ServingFrontend(
                service, batch_window_s=0.0, default_deadline_s=1e-9,
            )
            async with frontend:
                # the deadline (1ns) expires before the drain loop can
                # possibly seal the batch
                with pytest.raises(DeadlineExceeded):
                    await frontend.covered_probability(item)
            assert service.metrics.counter(
                "serving.deadline_exceeded"
            ).value >= 1

        asyncio.run(scenario())

    def test_batch_window_never_outwaits_earliest_deadline(self):
        service = make_service()
        csr = service.current_csr()

        async def scenario():
            # a one-hour batch window would starve every query; the
            # 50 ms deadline must seal the batch long before that
            frontend = ServingFrontend(service, batch_window_s=3600.0)
            async with frontend:
                value = await asyncio.wait_for(
                    frontend.covered_probability(
                        csr.items[0], timeout_s=0.05
                    ),
                    timeout=5.0,
                )
            return value

        value = asyncio.run(scenario())
        snapshot = service.ensure()
        assert value == snapshot.covered_probability(csr.items[0])

    def test_all_expired_batch_issues_no_snapshot_read(self):
        service = make_service()
        service.ensure()
        csr = service.current_csr()
        reads = []
        original = service.covered_probability_many
        service.covered_probability_many = lambda items: (
            reads.append(list(items)) or original(items)
        )
        frontend = ServingFrontend(service, batch_window_s=0.0)

        async def scenario():
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(3)]
            batch = [
                (csr.items[i], future, 0.0, 1e-12)  # deadline long past
                for i, future in enumerate(futures)
            ]
            frontend._answer(batch)
            for future in futures:
                with pytest.raises(DeadlineExceeded):
                    future.result()

        asyncio.run(scenario())
        assert reads == []  # no vectorized read for an all-expired batch
        assert service.metrics.counter(
            "serving.deadline_exceeded"
        ).value == 3

    def test_mixed_batch_answers_live_members_only(self):
        service = make_service()
        service.ensure()
        csr = service.current_csr()
        frontend = ServingFrontend(service, batch_window_s=0.0)

        async def scenario():
            loop = asyncio.get_running_loop()
            expired = loop.create_future()
            live = loop.create_future()
            frontend._answer([
                (csr.items[0], expired, 0.0, 1e-12),
                (csr.items[1], live, 0.0, None),
            ])
            with pytest.raises(DeadlineExceeded):
                expired.result()
            return live.result()

        value = asyncio.run(scenario())
        assert value == service.ensure().covered_probability(csr.items[1])

    def test_invalid_default_deadline_rejected(self):
        with pytest.raises(ServingError):
            ServingFrontend(make_service(), default_deadline_s=0.0)


# ----------------------------------------------------------------------
# Warm-restart persistence
# ----------------------------------------------------------------------
class TestWarmRestart:
    def test_restore_is_bitwise_identical(self, tmp_path):
        service = make_service()
        runtime = fast_runtime(service, persist_dir=tmp_path)
        snapshot = runtime.ensure()
        reborn = fast_runtime(
            AssortmentService(
                service.graph, variant=service.variant, k=service.k
            ),
            persist_dir=tmp_path,
        )
        assert reborn.restored
        adopted = reborn.active_snapshot()
        assert adopted.result.retained == snapshot.result.retained
        assert np.array_equal(adopted.conditional, snapshot.conditional)
        assert adopted.key == snapshot.key
        # the restored runtime answers without ever solving
        assert reborn.metrics.counter("serving.warm_restarts").value == 1
        answer = reborn.answer(snapshot.graph.items[0])
        assert answer.tier is Tier.FRESH

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        service = make_service()
        runtime = fast_runtime(service, persist_dir=tmp_path)
        snapshot = runtime.ensure()
        persister = runtime.persister
        # write a newer, corrupt file for the same key
        bogus = persister.path_for(snapshot.key, snapshot.sequence + 7)
        bogus.write_bytes(b"not an npz archive")
        loaded = SnapshotPersister(tmp_path).load(snapshot.key)
        assert loaded is not None
        assert loaded.result.retained == snapshot.result.retained

    def test_foreign_snapshot_is_not_restored(self, tmp_path):
        runtime = fast_runtime(make_service(seed=3), persist_dir=tmp_path)
        runtime.ensure()
        # a service over a different graph must not adopt it
        other = fast_runtime(make_service(seed=4), persist_dir=tmp_path)
        assert not other.restored
        assert other.active_snapshot() is None

    def test_adopt_rejects_key_mismatch(self, tmp_path):
        service_a = make_service(seed=3)
        service_b = make_service(seed=4)
        snapshot = service_a.ensure()
        with pytest.raises(ServingError, match="different question"):
            service_b.adopt(snapshot)

    def test_from_persisted_rebuilds_service_and_rule(self, tmp_path):
        service = make_service(k=7)
        runtime = fast_runtime(service, persist_dir=tmp_path)
        snapshot = runtime.ensure()
        reborn = ServingRuntime.from_persisted(tmp_path)
        assert reborn.restored
        assert reborn.service.k == 7
        assert reborn.service.variant == service.variant
        assert reborn.active_snapshot().key == snapshot.key

    def test_from_persisted_empty_directory_raises(self, tmp_path):
        with pytest.raises(ServingError, match="no usable"):
            ServingRuntime.from_persisted(tmp_path)

    def test_prune_keeps_newest(self, tmp_path):
        service = make_service()
        persister = SnapshotPersister(tmp_path, keep=2)
        runtime = fast_runtime(service, persister=persister)
        runtime.ensure()
        for step in range(4):
            runtime.apply_delta(next_delta(service, seed=step))
        files = sorted(tmp_path.glob("snap-*.npz"))
        # one file per distinct context key; at most `keep` per key
        by_key = {}
        for path in files:
            by_key.setdefault(path.name.rsplit("-", 1)[0], []).append(path)
        assert all(len(group) <= 2 for group in by_key.values())

    def test_injected_write_failures_are_counted_not_fatal(self, tmp_path):
        service = make_service()
        runtime = fast_runtime(service, persist_dir=tmp_path)
        with inject_faults(FaultInjector(checkpoint_write=1.0, seed=5)):
            snapshot = runtime.ensure()
        assert snapshot is not None  # the solve itself succeeded
        assert runtime.persister.write_failures >= 1
        assert list(tmp_path.glob("snap-*.npz")) == []
        assert list(tmp_path.glob(".tmp-*")) == []  # no torn temp files


# ----------------------------------------------------------------------
# Frontend over a runtime + CLI exit codes
# ----------------------------------------------------------------------
class TestIntegration:
    def test_frontend_over_runtime_serves_through_faults(self):
        service = make_service()
        runtime = fast_runtime(service)
        csr = service.current_csr()

        async def scenario():
            frontend = ServingFrontend(runtime, batch_window_s=0.0)
            async with frontend:
                clean = await frontend.covered_probability(csr.items[0])
                with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
                    applied = await frontend._apply_delta(
                        next_delta(service)
                    )
                degraded = await frontend.covered_probability(csr.items[0])
            return clean, applied, degraded

        clean, applied, degraded = asyncio.run(scenario())
        assert applied  # runtime absorbed the failure (no raise)
        assert runtime.tier is Tier.STALE
        assert degraded == clean  # still the last good snapshot

    def test_serve_exit_code_healthy(self, capsys):
        code = main([
            "serve", "--items", "30", "--requests", "40",
            "--concurrency", "8", "--seed", "1",
        ])
        assert code == 0
        report = capsys.readouterr().out
        assert '"tier": "fresh"' in report

    @pytest.mark.ambient_chaos
    def test_serve_exit_code_degraded(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "refresh_crash=1.0:seed=9")
        code = main([
            "serve", "--items", "30", "--requests", "40",
            "--concurrency", "8", "--seed", "1", "--retries", "2",
        ])
        assert code == 3
        report = capsys.readouterr().out
        assert '"tier": "static"' in report

    @pytest.mark.ambient_chaos
    def test_serve_exit_code_shed(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "refresh_crash=1.0:seed=9")
        code = main([
            "serve", "--items", "30", "--requests", "40",
            "--concurrency", "8", "--seed", "1", "--retries", "2",
            "--no-static-fallback",
        ])
        assert code == 4

    def test_serve_persist_dir_round_trip(self, tmp_path, capsys):
        persist = tmp_path / "snaps"
        code = main([
            "serve", "--items", "30", "--requests", "20",
            "--concurrency", "8", "--seed", "1",
            "--persist-dir", str(persist),
        ])
        assert code == 0
        assert list(persist.glob("snap-*.npz"))
        code = main([
            "serve", "--items", "30", "--requests", "20",
            "--concurrency", "8", "--seed", "1",
            "--persist-dir", str(persist),
        ])
        assert code == 0
        report = capsys.readouterr().out
        assert '"restored": true' in report

    def test_chaos_harness_smoke_is_green(self):
        from repro.evaluation.serving_chaos import run_serving_chaos

        report = run_serving_chaos(
            instances=2, max_items=32, seed=5,
            variants=("independent",),
        )
        assert report.ok, report.summary()
        assert report.faults_fired > 0
        assert "OK" in report.summary()
