"""Tests for the complementary minimization solver (Figure 4f machinery)."""

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.greedy import greedy_order, greedy_solve
from repro.core.parallel import ParallelGainEvaluator
from repro.core.threshold import greedy_threshold_solve
from repro.errors import SolverError
from repro.observability import SolverTrace

PARALLEL_BACKENDS = ("shm", "pipe")


@pytest.fixture(params=PARALLEL_BACKENDS)
def parallel_backend(request) -> str:
    return request.param


class TestThresholdSolve:
    @pytest.mark.parametrize("threshold", [0.25, 0.5, 0.75, 0.9])
    def test_reaches_threshold(self, medium_graph, variant, threshold):
        result = greedy_threshold_solve(medium_graph, threshold, variant)
        assert result.cover >= threshold - 1e-9

    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.85])
    def test_is_shortest_greedy_prefix(self, medium_graph, variant, threshold):
        result = greedy_threshold_solve(medium_graph, threshold, variant)
        full = greedy_order(medium_graph, variant)
        # Same items, same order as the full greedy ordering...
        assert result.retained == full.retained[: result.k]
        # ...and one fewer item would not reach the threshold.
        if result.k > 0:
            assert full.prefix_covers[result.k - 1] < threshold

    def test_zero_threshold_empty(self, medium_graph, variant):
        result = greedy_threshold_solve(medium_graph, 0.0, variant)
        assert result.k == 0
        assert result.retained == []

    def test_threshold_one_takes_whole_support(self, figure1, variant):
        result = greedy_threshold_solve(figure1, 1.0, variant)
        assert result.cover == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_invalid_threshold(self, figure1, bad):
        with pytest.raises(SolverError, match="threshold"):
            greedy_threshold_solve(figure1, bad, "independent")

    def test_figure1_threshold(self, figure1, variant):
        # 0.8 needs {B, D} (0.873); 0.66 is already reached by B alone.
        result = greedy_threshold_solve(figure1, 0.8, variant)
        assert result.retained == ["B", "D"]
        only_b = greedy_threshold_solve(figure1, 0.66, variant)
        assert only_b.retained == ["B"]

    def test_prefix_covers_recorded(self, medium_graph, variant):
        result = greedy_threshold_solve(medium_graph, 0.7, variant)
        assert len(result.prefix_covers) == result.k + 1
        assert result.prefix_covers[-1] == pytest.approx(result.cover)
        assert np.all(np.diff(result.prefix_covers) >= -1e-12)

    def test_avoids_binary_search_consistency(self, medium_graph, variant):
        # The direct threshold solver must agree with the naive
        # binary-search-over-k approach built on greedy_solve.
        threshold = 0.65
        direct = greedy_threshold_solve(medium_graph, threshold, variant)
        lo, hi = 0, 500
        while lo < hi:
            mid = (lo + hi) // 2
            if greedy_solve(medium_graph, mid, variant).cover >= threshold - 1e-12:
                hi = mid
            else:
                lo = mid + 1
        assert direct.k == lo


class TestEvaluationAccounting:
    """gain_evaluations reflects the work actually performed."""

    def test_serial_counts_one_upfront_sweep(self, medium_graph, variant):
        n = as_csr(medium_graph).n_items
        result = greedy_threshold_solve(medium_graph, 0.6, variant)
        # The accelerated rule pays a single n-candidate sweep up front
        # and patches incrementally afterwards.
        assert result.gain_evaluations == n

    def test_serial_zero_threshold_still_pays_the_sweep(
        self, medium_graph, variant
    ):
        n = as_csr(medium_graph).n_items
        result = greedy_threshold_solve(medium_graph, 0.0, variant)
        assert result.k == 0
        assert result.gain_evaluations == n

    def test_parallel_counts_per_round_sweeps(self, medium_graph, variant,
                                              parallel_backend):
        n = as_csr(medium_graph).n_items
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=parallel_backend
        ) as pool:
            result = greedy_threshold_solve(
                medium_graph, 0.6, variant, parallel=pool
            )
        expected = sum(n - i for i in range(result.k))
        assert result.gain_evaluations == expected
        assert result.gain_evaluations != n  # the old hardcoded value

    def test_tracer_counter_matches_result(self, medium_graph, variant):
        tracer = SolverTrace()
        result = greedy_threshold_solve(
            medium_graph, 0.55, variant, tracer=tracer
        )
        counted = tracer.metrics.counter("solver.gain_evaluations").value
        assert counted == result.gain_evaluations
