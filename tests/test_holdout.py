"""Tests for the holdout (train/test) evaluation protocol."""

import pytest

from repro.adaptation import build_preference_graph
from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.clickstream.models import Clickstream, Session
from repro.core.greedy import greedy_solve
from repro.core.baselines import random_solve, top_k_weight_solve
from repro.errors import SolverError
from repro.evaluation.holdout import (
    evaluate_holdout,
    split_clickstream,
)


def stream(*sessions) -> Clickstream:
    return Clickstream(
        Session(f"s{i}", clicks, purchase)
        for i, (clicks, purchase) in enumerate(sessions)
    )


class TestSplit:
    def test_partition(self):
        model = ConsumerModel(ShopperConfig(n_items=20), seed=0)
        full = model.generate(1000, seed=1)
        train, test = split_clickstream(full, train_fraction=0.8, seed=2)
        assert train.n_sessions + test.n_sessions == 1000
        assert train.n_sessions == 800
        ids = {s.session_id for s in train} | {s.session_id for s in test}
        assert len(ids) == 1000  # disjoint

    def test_seed_reproducible(self):
        model = ConsumerModel(ShopperConfig(n_items=20), seed=0)
        full = model.generate(200, seed=1)
        a_train, _ = split_clickstream(full, seed=7)
        b_train, _ = split_clickstream(full, seed=7)
        assert [s.session_id for s in a_train] == [
            s.session_id for s in b_train
        ]

    def test_fraction_validation(self):
        with pytest.raises(SolverError, match="train_fraction"):
            split_clickstream(stream(((), "a")), train_fraction=1.0)


class TestEvaluate:
    def test_outcome_classification(self):
        test = stream(
            ((), "kept"),                  # fulfilled
            (("kept",), "dropped"),        # substituted
            (("also-dropped",), "dropped"),  # lost
            (("x",), None),                # browse-only: ignored
        )
        report = evaluate_holdout(["kept"], test)
        assert report.n_sessions == 3
        assert report.fulfilled == 1
        assert report.substituted == 1
        assert report.lost == 1
        assert report.fulfillment_rate == pytest.approx(1 / 3)
        assert report.service_rate == pytest.approx(2 / 3)

    def test_self_click_not_substitution(self):
        # Clicking the (dropped) purchased item itself is not a
        # substitution signal.
        test = stream((("dropped",), "dropped"))
        report = evaluate_holdout(["other"], test)
        assert report.lost == 1

    def test_empty_stream(self):
        report = evaluate_holdout(["a"], stream())
        assert report.n_sessions == 0
        assert report.service_rate == 0.0

    def test_full_retention_fulfills_everything(self):
        model = ConsumerModel(ShopperConfig(n_items=15), seed=3)
        test = model.generate(500, seed=4)
        report = evaluate_holdout(model.item_ids, test)
        assert report.fulfilled == report.n_sessions
        assert report.service_rate == 1.0


class TestEndToEndProtocol:
    def test_greedy_beats_random_out_of_sample(self):
        model = ConsumerModel(
            ShopperConfig(n_items=80, behavior="independent"), seed=5
        )
        full = model.generate(30_000, seed=6)
        train, test = split_clickstream(full, seed=7)
        graph = build_preference_graph(train, "independent")
        k = 15
        greedy = greedy_solve(graph, k, "independent")
        rand = random_solve(graph, k, "independent", seed=8, draws=10)
        greedy_report = evaluate_holdout(greedy.retained, test)
        random_report = evaluate_holdout(rand.retained, test)
        assert greedy_report.service_rate > random_report.service_rate

    def test_greedy_competitive_with_top_sellers_out_of_sample(self):
        model = ConsumerModel(
            ShopperConfig(n_items=80, behavior="independent",
                          zipf_exponent=0.8),
            seed=9,
        )
        full = model.generate(30_000, seed=10)
        train, test = split_clickstream(full, seed=11)
        graph = build_preference_graph(train, "independent")
        greedy = greedy_solve(graph, 12, "independent")
        naive = top_k_weight_solve(graph, 12, "independent")
        greedy_report = evaluate_holdout(greedy.retained, test)
        naive_report = evaluate_holdout(naive.retained, test)
        # Out of sample, the alternative-aware selection serves at
        # least as many sessions (small slack for sampling noise).
        assert (
            greedy_report.service_rate
            >= naive_report.service_rate - 0.01
        )
