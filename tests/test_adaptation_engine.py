"""Tests for the Data Adaptation Engine (Section 5.2 construction)."""

import pytest

from repro.adaptation.engine import (
    AdaptationConfig,
    DataAdaptationEngine,
    build_preference_graph,
)
from repro.clickstream.models import Clickstream, Session
from repro.core.variants import Variant
from repro.errors import AdaptationError


def stream(*sessions) -> Clickstream:
    return Clickstream(
        Session(f"s{i}", clicks, purchase)
        for i, (clicks, purchase) in enumerate(sessions)
    )


class TestNodeWeights:
    def test_purchase_shares(self):
        s = stream(((), "a"), ((), "a"), ((), "b"), ((), "c"))
        graph = build_preference_graph(s, "independent")
        assert graph.node_weight("a") == pytest.approx(0.5)
        assert graph.node_weight("b") == pytest.approx(0.25)
        assert graph.node_weight("c") == pytest.approx(0.25)
        graph.validate("independent")

    def test_browse_only_sessions_ignored(self):
        s = stream((("x", "y"), None), ((), "a"))
        graph = build_preference_graph(s, "independent")
        assert graph.node_weight("a") == 1.0
        assert "x" not in graph

    def test_no_purchases_raises(self):
        s = stream((("x",), None))
        with pytest.raises(AdaptationError, match="no purchasing"):
            build_preference_graph(s, "independent")

    def test_include_unpurchased(self):
        s = stream((("x",), "a"))
        graph = build_preference_graph(
            s, "independent", include_unpurchased=True
        )
        assert graph.node_weight("x") == 0.0
        assert graph.has_edge("a", "x")

    def test_unpurchased_excluded_by_default(self):
        s = stream((("x",), "a"))
        graph = build_preference_graph(s, "independent")
        assert "x" not in graph
        assert graph.n_edges == 0


class TestEdgeWeights:
    def test_independent_fraction_of_sessions(self):
        # b clicked in 2 of 4 a-purchases -> edge weight 0.5.
        s = stream(
            (("b",), "a"), (("b",), "a"), ((), "a"), ((), "a"), ((), "b"),
        )
        graph = build_preference_graph(s, "independent")
        assert graph.edge_weight("a", "b") == pytest.approx(0.5)

    def test_self_clicks_ignored(self):
        s = stream((("a", "b"), "a"), ((), "b"))
        graph = build_preference_graph(s, "independent")
        assert not graph.has_edge("a", "a")
        assert graph.edge_weight("a", "b") == pytest.approx(1.0)

    def test_normalized_splits_multi_clicks(self):
        # One session clicks b and c: each counts 1/2.
        s = stream((("b", "c"), "a"), ((), "b"), ((), "c"))
        graph = build_preference_graph(s, "normalized")
        assert graph.edge_weight("a", "b") == pytest.approx(0.5)
        assert graph.edge_weight("a", "c") == pytest.approx(0.5)
        graph.validate("normalized")

    def test_independent_keeps_full_clicks(self):
        s = stream((("b", "c"), "a"), ((), "b"), ((), "c"))
        graph = build_preference_graph(s, "independent")
        assert graph.edge_weight("a", "b") == pytest.approx(1.0)
        assert graph.edge_weight("a", "c") == pytest.approx(1.0)

    def test_normalized_out_sums_never_exceed_one(self):
        # Heavily multi-click sessions still satisfy the NPC invariant.
        s = stream(
            (("b", "c", "d"), "a"),
            (("b", "c"), "a"),
            ((), "b"), ((), "c"), ((), "d"),
        )
        graph = build_preference_graph(s, "normalized")
        assert graph.out_weight_sum("a") <= 1.0 + 1e-9
        graph.validate("normalized")

    def test_repeated_clicks_in_one_session_count_once(self):
        s = stream((("b", "b", "b"), "a"), ((), "b"))
        graph = build_preference_graph(s, "independent")
        assert graph.edge_weight("a", "b") == pytest.approx(1.0)

    def test_direction_is_purchase_to_click(self):
        # Paper: edge FROM the purchased (desired) item TO the clicked
        # alternative, not the browsing order.
        s = stream((("alt",), "desired"), ((), "alt"))
        graph = build_preference_graph(s, "independent")
        assert graph.has_edge("desired", "alt")
        assert not graph.has_edge("alt", "desired")


class TestPruning:
    def test_min_edge_sessions(self):
        s = stream(
            (("b",), "a"), ((), "a"), ((), "a"), ((), "b"),
        )
        keep = build_preference_graph(s, "independent", min_edge_sessions=1)
        assert keep.has_edge("a", "b")
        drop = build_preference_graph(s, "independent", min_edge_sessions=2)
        assert not drop.has_edge("a", "b")

    def test_min_edge_weight(self):
        s = stream(
            *([(("b",), "a")] + [((), "a")] * 9 + [((), "b")])
        )
        keep = build_preference_graph(s, "independent", min_edge_weight=0.05)
        assert keep.has_edge("a", "b")  # weight 0.1
        drop = build_preference_graph(s, "independent", min_edge_weight=0.2)
        assert not drop.has_edge("a", "b")


class TestEngineObject:
    def test_default_config(self):
        engine = DataAdaptationEngine()
        assert engine.config.variant is Variant.INDEPENDENT

    def test_config_passthrough(self):
        config = AdaptationConfig(variant=Variant.NORMALIZED)
        engine = DataAdaptationEngine(config)
        s = stream((("b", "c"), "a"), ((), "b"), ((), "c"))
        graph = engine.build_graph(s)
        assert graph.edge_weight("a", "b") == pytest.approx(0.5)
