"""Tests for the CLI audit command and solver constraint flags."""

import json

import pytest

from repro.cli import main
from repro.examples_data import figure1_graph
from repro.graphio import write_graph_json


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.json"
    write_graph_json(figure1_graph(), path)
    return path


class TestSolveConstraints:
    def test_exclude_flag(self, graph_file, capsys):
        assert main([
            "solve", str(graph_file), "--variant", "normalized",
            "-k", "2", "--exclude", "B",
        ]) == 0
        out = capsys.readouterr().out
        assert "B" not in [
            line.split(". ")[-1] for line in out.splitlines() if ". " in line
        ]

    def test_must_retain_flag(self, graph_file, capsys):
        assert main([
            "solve", str(graph_file), "--variant", "normalized",
            "-k", "2", "--must-retain", "E",
        ]) == 0
        out = capsys.readouterr().out
        assert "1. E" in out


class TestAuditCommand:
    def test_audit_with_items(self, graph_file, capsys):
        assert main([
            "audit", str(graph_file), "--variant", "normalized",
            "--items", "B", "D",
        ]) == 0
        out = capsys.readouterr().out
        assert "cover 0.8730" in out
        assert "largest demand losses" in out
        assert "load-bearing retained items" in out

    def test_audit_with_result_file(self, graph_file, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        assert main([
            "solve", str(graph_file), "--variant", "normalized",
            "-k", "2", "-o", str(result_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "audit", str(graph_file), "--variant", "normalized",
            "--result", str(result_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cover 0.8730" in out

    def test_audit_requires_input(self, graph_file, capsys):
        code = main([
            "audit", str(graph_file), "--variant", "normalized",
        ])
        assert code == 2
        assert "provide" in capsys.readouterr().err


class TestPipelineConstraints:
    def test_reducer_passthrough(self):
        from repro.clickstream import sessions_from_dicts
        from repro.examples_data import figure3_sessions
        from repro.pipeline import InventoryReducer

        stream = sessions_from_dicts(figure3_sessions())
        reducer = InventoryReducer(
            k=1, variant="normalized",
            exclude=["iphone8-256-silver"],
        )
        report = reducer.run(stream)
        assert "iphone8-256-silver" not in report.retained

    def test_constraints_rejected_with_threshold(self):
        from repro.errors import SolverError
        from repro.pipeline import InventoryReducer

        with pytest.raises(SolverError, match="fixed-k"):
            InventoryReducer(threshold=0.5, exclude=["x"])
