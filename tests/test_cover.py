"""Tests for the exact cover function (Definitions 2.1 and 2.2)."""

import numpy as np
import pytest

from repro.core.cover import cover, coverage_vector, item_coverage, resolve_indices
from repro.core.csr import CSRGraph, as_csr
from repro.core.graph import PreferenceGraph
from repro.errors import UnknownItemError


class TestBasicProperties:
    def test_empty_set_covers_nothing(self, figure1, variant):
        assert cover(figure1, [], variant) == 0.0

    def test_full_set_covers_everything(self, figure1, variant):
        items = list(figure1.items())
        assert cover(figure1, items, variant) == pytest.approx(1.0)

    def test_retained_mass_is_lower_bound(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        retained = list(range(0, 50))
        got = cover(csr, retained, variant)
        assert got >= float(csr.node_weight[retained].sum()) - 1e-12

    def test_monotone_in_set(self, small_graph, variant):
        small = cover(small_graph, [0, 1], variant)
        bigger = cover(small_graph, [0, 1, 2, 3], variant)
        assert bigger >= small - 1e-12

    def test_cover_bounded_by_one(self, medium_graph, variant):
        got = cover(medium_graph, range(100), variant)
        assert 0.0 <= got <= 1.0 + 1e-12


class TestSemantics:
    def test_independent_noisy_or(self):
        g = PreferenceGraph.from_weights(
            {"v": 0.5, "a": 0.25, "b": 0.25},
            edges=[("v", "a", 0.5), ("v", "b", 0.5)],
        )
        got = cover(g, ["a", "b"], "independent")
        # a + b retained mass 0.5, v covered 1-(0.5*0.5)=0.75 -> 0.375
        assert got == pytest.approx(0.5 + 0.5 * 0.75)

    def test_normalized_sum(self):
        g = PreferenceGraph.from_weights(
            {"v": 0.5, "a": 0.25, "b": 0.25},
            edges=[("v", "a", 0.5), ("v", "b", 0.5)],
        )
        got = cover(g, ["a", "b"], "normalized")
        assert got == pytest.approx(0.5 + 0.5 * 1.0)

    def test_variants_agree_with_single_retained_neighbor(self):
        g = PreferenceGraph.from_weights(
            {"v": 0.6, "a": 0.4},
            edges=[("v", "a", 0.3)],
        )
        indep = cover(g, ["a"], "independent")
        norm = cover(g, ["a"], "normalized")
        assert indep == pytest.approx(norm) == pytest.approx(0.4 + 0.6 * 0.3)

    def test_figure1_quoted_values(self, figure1):
        # Values quoted in Example 1.1 of the paper.
        assert cover(figure1, ["A", "B"], "normalized") == pytest.approx(0.77)
        assert cover(figure1, ["B", "D"], "normalized") == pytest.approx(0.873)


class TestCoverageVector:
    def test_sums_to_cover(self, medium_graph, variant):
        retained = list(range(40))
        vec = coverage_vector(medium_graph, retained, variant)
        assert vec.sum() == pytest.approx(cover(medium_graph, retained, variant))

    def test_retained_fully_covered(self, small_graph, variant):
        csr = as_csr(small_graph)
        vec = coverage_vector(csr, [3, 5], variant)
        assert vec[3] == pytest.approx(float(csr.node_weight[3]))
        assert vec[5] == pytest.approx(float(csr.node_weight[5]))

    def test_entries_bounded_by_node_weight(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        vec = coverage_vector(csr, range(60), variant)
        assert np.all(vec <= csr.node_weight + 1e-12)
        assert np.all(vec >= 0)


class TestItemCoverage:
    def test_conditional_values(self, figure1):
        csr = as_csr(figure1)
        conditional = item_coverage(csr, ["B", "D"], "normalized")
        by_item = {csr.items[i]: conditional[i] for i in range(5)}
        # Figure 2 walkthrough: A 67%, C 100%, E 90%.
        assert by_item["A"] == pytest.approx(2 / 3)
        assert by_item["C"] == pytest.approx(1.0)
        assert by_item["E"] == pytest.approx(0.9)
        assert by_item["B"] == pytest.approx(1.0)
        assert by_item["D"] == pytest.approx(1.0)

    def test_zero_weight_items(self):
        g = PreferenceGraph.from_weights(
            {"a": 1.0, "zero": 0.0},
            edges=[("zero", "a", 0.5)],
        )
        conditional = item_coverage(g, ["a"], "independent")
        csr = as_csr(g)
        assert conditional[csr.index_of("zero")] == 0.0
        conditional_retained = item_coverage(g, ["a", "zero"], "independent")
        assert conditional_retained[csr.index_of("zero")] == 1.0


class TestResolveIndices:
    def test_accepts_ids_and_indices(self, figure1):
        csr = as_csr(figure1)
        mixed = resolve_indices(csr, ["A", 1, "D"])
        assert list(mixed) == [csr.index_of("A"), 1, csr.index_of("D")]

    def test_deduplicates_preserving_order(self, figure1):
        csr = as_csr(figure1)
        indices = resolve_indices(csr, ["B", "B", "A"])
        assert list(indices) == [csr.index_of("B"), csr.index_of("A")]

    def test_unknown_item_raises(self, figure1):
        csr = as_csr(figure1)
        with pytest.raises(UnknownItemError):
            resolve_indices(csr, ["nope"])

    def test_integer_item_ids_resolve_as_ids_first(self):
        csr = CSRGraph.from_arrays(
            np.array([0.5, 0.5]), np.array([0]), np.array([1]),
            np.array([0.4]), items=[10, 20],
        )
        # 10 is an item id, so it resolves through the item table.
        assert list(resolve_indices(csr, [10])) == [0]
        # 0 and 1 are not ids here; integers in [0, n) fall back to
        # dense-index semantics so positional call sites keep working.
        assert list(resolve_indices(csr, [0, 1])) == [0, 1]

    def test_id_wins_when_id_and_index_collide(self):
        # Regression: item ids are a non-identity permutation of the
        # index range, so the same integer names different nodes under
        # id vs index semantics.  Ids must win — the old index-first
        # rule silently resolved every element positionally.
        csr = CSRGraph.from_arrays(
            np.array([0.2, 0.3, 0.5]), np.array([0]), np.array([1]),
            np.array([0.4]), items=[2, 0, 1],
        )
        assert list(resolve_indices(csr, [2, 0, 1])) == [0, 1, 2]
        # Cover/coverage recomputation follows the same rule: retaining
        # item 1 (index 2) keeps that node's mass, not node 1's.
        vector = coverage_vector(csr, [1], "independent")
        assert vector[2] == pytest.approx(0.5)
        assert vector[1] == 0.0

    def test_unhashable_input_raises_unknown_item(self, figure1):
        csr = as_csr(figure1)
        with pytest.raises(UnknownItemError):
            resolve_indices(csr, [["not", "an", "id"]])
