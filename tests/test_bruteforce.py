"""Tests for the exact brute-force solver."""

import itertools

import pytest

from repro.core.bruteforce import brute_force_solve
from repro.core.cover import cover
from repro.errors import SolverError
from repro.workloads.graphs import small_dense_graph


class TestOptimality:
    def test_figure1_optimum(self, figure1, variant):
        result = brute_force_solve(figure1, 2, variant)
        assert sorted(result.retained) == ["B", "D"]
        assert result.cover == pytest.approx(0.873)

    def test_beats_or_ties_every_subset(self, variant):
        graph = small_dense_graph(8, variant=variant, seed=5)
        result = brute_force_solve(graph, 3, variant)
        for subset in itertools.combinations(range(8), 3):
            assert result.cover >= cover(graph, subset, variant) - 1e-12

    def test_k_zero(self, figure1):
        result = brute_force_solve(figure1, 0, "independent")
        assert result.retained == []
        assert result.cover == 0.0

    def test_k_equals_n(self, figure1, variant):
        result = brute_force_solve(figure1, 5, variant)
        assert result.cover == pytest.approx(1.0)

    def test_deterministic_tie_break(self):
        # Two symmetric items: the lexicographically first subset wins.
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights({"A": 0.5, "B": 0.5})
        result = brute_force_solve(g, 1, "independent")
        assert result.retained == ["A"]


class TestLimits:
    def test_subset_safety_valve(self):
        graph = small_dense_graph(40, seed=0)
        with pytest.raises(SolverError, match="max_subsets"):
            brute_force_solve(graph, 20, "independent",
                              max_subsets=1_000_000)

    def test_valve_can_be_raised(self, figure1):
        result = brute_force_solve(figure1, 2, "independent", max_subsets=None)
        assert result.cover == pytest.approx(0.873)

    def test_k_out_of_range(self, figure1):
        with pytest.raises(SolverError, match="out of range"):
            brute_force_solve(figure1, 9, "independent")

    def test_counts_subsets_evaluated(self, figure1):
        result = brute_force_solve(figure1, 2, "independent")
        assert result.gain_evaluations == 10  # C(5, 2)

    def test_no_prefix_covers(self, figure1):
        result = brute_force_solve(figure1, 2, "independent")
        assert result.prefix_covers is None
        with pytest.raises(SolverError, match="prefix"):
            result.cover_at(1)
