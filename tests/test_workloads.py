"""Tests for workload generators and dataset stand-ins."""

import numpy as np
import pytest

from repro.errors import GraphValidationError, ReproError
from repro.workloads.datasets import (
    PAPER_DATASETS,
    build_dataset,
    dataset_table,
)
from repro.workloads.graphs import (
    SyntheticGraphConfig,
    random_preference_graph,
    small_dense_graph,
    synthetic_graph,
)


class TestSyntheticGraph:
    def test_valid_for_variant(self):
        for variant in ("independent", "normalized"):
            config = SyntheticGraphConfig(
                n_items=500, variant=__import__(
                    "repro.core.variants", fromlist=["Variant"]
                ).Variant.coerce(variant),
            )
            graph = synthetic_graph(config, seed=0)
            graph.validate(variant)

    def test_deterministic(self):
        a = random_preference_graph(200, seed=5)
        b = random_preference_graph(200, seed=5)
        np.testing.assert_array_equal(a.node_weight, b.node_weight)
        np.testing.assert_array_equal(a.in_src, b.in_src)

    def test_degree_close_to_target(self):
        graph = random_preference_graph(5000, avg_out_degree=4.0, seed=1)
        # Dedup and span-capping trim a little; stay in the ballpark.
        assert 2.0 < graph.n_edges / graph.n_items < 4.5

    def test_no_self_edges(self):
        graph = random_preference_graph(1000, seed=2)
        sources = np.repeat(
            np.arange(graph.n_items), np.diff(graph.out_ptr)
        )
        assert not np.any(sources == graph.out_dst)

    def test_no_duplicate_edges(self):
        graph = random_preference_graph(1000, seed=3)
        sources = np.repeat(
            np.arange(graph.n_items), np.diff(graph.out_ptr)
        )
        keys = sources * graph.n_items + graph.out_dst
        assert len(np.unique(keys)) == len(keys)

    def test_too_small_rejected(self):
        with pytest.raises(GraphValidationError):
            synthetic_graph(SyntheticGraphConfig(n_items=1))

    def test_zipf_skew(self):
        graph = random_preference_graph(2000, seed=4)
        weights = np.sort(graph.node_weight)[::-1]
        # Top 10% of items carry well over 10% of the mass.
        assert weights[:200].sum() > 0.3


class TestSmallDenseGraph:
    def test_valid(self, variant):
        graph = small_dense_graph(10, variant=variant, seed=0)
        graph.validate(variant)

    def test_density(self):
        graph = small_dense_graph(20, edge_probability=0.5, seed=1)
        possible = 20 * 19
        assert 0.35 < graph.n_edges / possible < 0.65

    def test_too_small_rejected(self):
        with pytest.raises(GraphValidationError):
            small_dense_graph(1)


class TestDatasets:
    def test_registry_contents(self):
        assert set(PAPER_DATASETS) == {"PE", "PF", "PM", "YC"}
        assert PAPER_DATASETS["PM"].variant().value == "normalized"
        assert PAPER_DATASETS["YC"].browse_only_rate > 0.9

    def test_paper_stats_match_table2(self):
        yc = PAPER_DATASETS["YC"].paper
        assert yc.sessions == 9_249_729
        assert yc.purchases == 259_579
        assert yc.items == 52_739
        assert yc.edges == 249_008
        pe = PAPER_DATASETS["PE"].paper
        assert pe.items == 1_921_701

    def test_build_dataset(self):
        clickstream, model = build_dataset("PM", scale=0.0005, seed=0)
        stats = clickstream.stats()
        assert stats["sessions"] > 0
        assert stats["purchases"] == stats["sessions"]  # no browse-only

    def test_yc_mostly_browse_only(self):
        clickstream, _ = build_dataset("YC", scale=0.001, seed=0)
        rate = clickstream.n_purchases / clickstream.n_sessions
        assert rate < 0.1

    def test_unknown_dataset(self):
        with pytest.raises(ReproError, match="unknown dataset"):
            build_dataset("XX")

    def test_scale_validation(self):
        with pytest.raises(ReproError, match="scale"):
            PAPER_DATASETS["PE"].scaled_counts(0)

    def test_case_insensitive(self):
        clickstream, _ = build_dataset("yc", scale=0.001, seed=0)
        assert clickstream.n_sessions > 0

    def test_dataset_table_rows(self):
        rows = dataset_table(scale=0.0005, seed=1)
        assert [r["dataset"] for r in rows] == ["PE", "PF", "PM", "YC"]
        for row in rows:
            assert row["generated_items"] > 0
            assert row["generated_edges"] > 0
            assert row["paper_items"] > row["generated_items"]

    def test_pm_fits_normalized(self):
        from repro.adaptation import recommend_variant

        clickstream, _ = build_dataset("PM", scale=0.001, seed=2)
        rec = recommend_variant(clickstream)
        assert rec.variant.value == "normalized"
        assert rec.normalized_fit >= 0.9


class TestBoundedDegreeGraph:
    def test_degree_bound_respected(self):
        from repro.workloads.graphs import bounded_degree_graph

        graph = bounded_degree_graph(200, max_degree=3, seed=0)
        total_degree = graph.in_degrees() + graph.out_degrees()
        assert total_degree.max() <= 3
        assert graph.n_edges > 50  # budget reasonably saturated

    def test_valid_for_variant(self):
        from repro.workloads.graphs import bounded_degree_graph

        for variant in ("independent", "normalized"):
            graph = bounded_degree_graph(
                50, max_degree=3, variant=variant, seed=1
            )
            graph.validate(variant)

    def test_reduction_preserves_degree(self):
        # Theorem 3.1: the NPC->VC reduction keeps the maximal degree
        # (self-loops aside), so hardness carries to degree-3 instances.
        from repro.reductions.vertex_cover import npc_to_vc
        from repro.workloads.graphs import bounded_degree_graph

        graph = bounded_degree_graph(
            100, max_degree=3, variant="normalized", seed=2
        )
        instance, _items = npc_to_vc(graph)
        degree = [0] * instance.n
        for u, v, _w in instance.edges:
            if u != v:  # self-loops excluded, as in the theorem
                degree[u] += 1
                degree[v] += 1
        assert max(degree) <= 3

    def test_validation(self):
        from repro.errors import GraphValidationError
        from repro.workloads.graphs import bounded_degree_graph

        import pytest as _pytest
        with _pytest.raises(GraphValidationError):
            bounded_degree_graph(1)
        with _pytest.raises(GraphValidationError):
            bounded_degree_graph(10, max_degree=0)

    def test_solvable(self):
        from repro.core.greedy import greedy_solve
        from repro.workloads.graphs import bounded_degree_graph

        graph = bounded_degree_graph(100, seed=3)
        result = greedy_solve(graph, 20, "normalized")
        assert 0 < result.cover <= 1
