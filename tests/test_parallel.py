"""Tests for parallel gain evaluation and the work-span cost model."""

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.parallel import (
    ParallelCostModel,
    ParallelGainEvaluator,
    calibrate_cost_model,
    speedup_curve,
)
from repro.core.threshold import greedy_threshold_solve
from repro.errors import SolverError

BACKENDS = ("shm", "pipe")


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    """Parametrize a test over both wire protocols."""
    return request.param


class TestParallelGainEvaluator:
    def test_matches_serial_gains(self, medium_graph, variant, backend):
        csr = as_csr(medium_graph)
        with ParallelGainEvaluator(
            csr, variant, n_workers=3, backend=backend
        ) as pool:
            assert pool.backend == backend
            state = GreedyState(csr, variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )
            # After committing nodes, workers must observe the new state.
            state.add_node(5)
            state.add_node(99)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )

    def test_full_solve_same_solution(self, medium_graph, variant, backend):
        serial = greedy_solve(medium_graph, 20, variant, strategy="naive")
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        ) as pool:
            parallel = greedy_solve(
                medium_graph, 20, variant, strategy="naive", parallel=pool
            )
        assert parallel.retained == serial.retained
        assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)

    def test_threshold_solve_same_solution(self, medium_graph, variant,
                                           backend):
        serial = greedy_threshold_solve(
            medium_graph, threshold=0.55, variant=variant
        )
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=3, backend=backend
        ) as pool:
            parallel = greedy_threshold_solve(
                medium_graph, threshold=0.55, variant=variant, parallel=pool
            )
        assert parallel.retained == serial.retained
        assert parallel.k == serial.k
        assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)

    def test_auto_prefers_shared_memory(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=2)
        assert pool.backend in ("shm", "pipe", "serial")
        if "fork" in mp.get_all_start_methods():
            assert pool.backend == "shm"

    def test_unknown_backend_rejected(self, small_graph):
        with pytest.raises(SolverError, match="parallel backend"):
            ParallelGainEvaluator(
                small_graph, "independent", n_workers=2, backend="zeromq"
            )

    def test_single_worker_is_serial(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=1)
        with pool:
            state = GreedyState(as_csr(small_graph), variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all()
            )
        assert pool._procs == []

    def test_invalid_worker_count(self, small_graph):
        with pytest.raises(SolverError, match="n_workers"):
            ParallelGainEvaluator(small_graph, "independent", n_workers=0)

    def test_edge_balanced_cuts_partition(self, medium_graph, variant):
        pool = ParallelGainEvaluator(medium_graph, variant, n_workers=4)
        cuts = pool._edge_balanced_cuts(as_csr(medium_graph).n_items, 4)
        assert cuts[0][0] == 0
        assert cuts[-1][1] == as_csr(medium_graph).n_items
        for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
            assert hi == lo  # contiguous, non-overlapping

    def test_close_is_idempotent(self, small_graph, variant, backend):
        pool = ParallelGainEvaluator(
            small_graph, variant, n_workers=2, backend=backend
        )
        pool.start()
        pool.close()
        pool.close()
        assert pool._shm_blocks == []


class TestWorkerCleanup:
    """Error paths must never leak worker processes or shared segments."""

    def _assert_no_children(self, procs):
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive()

    def test_worker_error_raises_and_reaps(self, medium_graph, variant,
                                           backend):
        csr = as_csr(medium_graph)
        pool = ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend
        )
        pool.start()
        procs = list(pool._procs)
        assert procs
        # Poke the protocol with garbage: the worker reports the failure
        # instead of dying silently, and the parent tears the pool down.
        if backend == "shm":
            pool._conns[0].send_bytes(b"garbage")
        else:
            pool._conns[0].send(("garbage",))
        state = GreedyState(csr, variant)
        with pytest.raises(SolverError, match="worker"):
            pool.gains(state)
        assert pool._procs == []
        assert pool._shm_blocks == []
        self._assert_no_children(procs)

    def test_exit_reaps_after_midsolve_exception(self, medium_graph,
                                                 variant, backend):
        csr = as_csr(medium_graph)
        procs = []
        with pytest.raises(RuntimeError, match="mid-solve"):
            with ParallelGainEvaluator(
                csr, variant, n_workers=2, backend=backend
            ) as pool:
                pool.gains(GreedyState(csr, variant))
                procs = list(pool._procs)
                assert procs
                raise RuntimeError("mid-solve failure")
        self._assert_no_children(procs)
        assert pool._procs == []
        assert pool._shm_blocks == []

    def test_incompatible_state_raises_and_reaps(self, variant, backend):
        from repro.workloads.graphs import random_preference_graph

        big = random_preference_graph(300, variant=variant, seed=1)
        small = random_preference_graph(50, variant=variant, seed=2)
        pool = ParallelGainEvaluator(
            small, variant, n_workers=2, backend=backend
        )
        pool.start()
        procs = list(pool._procs)
        state = GreedyState(as_csr(big), variant)
        state.add_node(200)  # out of range for the pool's 50-node graph
        with pytest.raises(SolverError):
            # A state over a different graph cannot be evaluated; the
            # failure must be a SolverError, not a hang or a leak.
            pool.gains(state)
        self._assert_no_children(procs)
        assert pool._procs == []


def _assert_reaped(procs):
    """Every child joined, reaped and invisible to the process table."""
    for proc in procs:
        proc.join(timeout=5)
        assert not proc.is_alive()
        assert proc not in mp.active_children()
        assert not os.path.exists(f"/proc/{proc.pid}")


class TestEpochProtocol:
    """Stale replicas are structurally impossible, not just patched."""

    def test_two_sequential_solves_one_evaluator(self, medium_graph,
                                                 variant, backend):
        # Regression for the stale `_synced` counter: the second solve's
        # fresh state used to meet replicas still holding the first
        # solve's selections, silently returning wrong gains on pipe.
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        ) as pool:
            for k in (12, 17):
                serial = greedy_solve(
                    medium_graph, k=k, variant=variant, strategy="naive"
                )
                parallel = greedy_solve(
                    medium_graph, k=k, variant=variant, strategy="naive",
                    parallel=pool,
                )
                assert parallel.retained == serial.retained
                assert parallel.cover == serial.cover

    def test_reuse_after_close(self, medium_graph, variant, backend):
        # close() then start(): fresh forks must never inherit the old
        # pool's sync bookkeeping.
        pool = ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        )
        serial = greedy_solve(
            medium_graph, k=10, variant=variant, strategy="naive"
        )
        for _ in range(2):
            with pool:
                parallel = greedy_solve(
                    medium_graph, k=10, variant=variant, strategy="naive",
                    parallel=pool,
                )
            assert parallel.retained == serial.retained

    def test_fresh_state_on_warm_pool(self, medium_graph, variant,
                                      backend):
        # A brand-new state handed to a pool whose replicas are ahead
        # must trigger a resync, not reuse the stale replicas.
        csr = as_csr(medium_graph)
        with ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend
        ) as pool:
            advanced = GreedyState(csr, variant)
            pool.gains(advanced)
            advanced.add_node(3)
            advanced.add_node(11)
            pool.gains(advanced)
            fresh = GreedyState(csr, variant)
            np.testing.assert_allclose(
                pool.gains(fresh), fresh.gains_all(), atol=1e-12
            )
            if backend == "pipe":
                assert pool.resyncs >= 1

    def test_divergent_state_of_equal_epoch(self, medium_graph, variant,
                                            backend):
        # Same epoch, different selections: the order digest (not the
        # epoch count) is what catches this.
        csr = as_csr(medium_graph)
        with ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend
        ) as pool:
            first = GreedyState(csr, variant)
            first.add_node(5)
            first.add_node(7)
            pool.gains(first)
            second = GreedyState(csr, variant)
            second.add_node(3)
            second.add_node(9)
            assert second.epoch == first.epoch
            assert second.order_digest != first.order_digest
            np.testing.assert_allclose(
                pool.gains(second), second.gains_all(), atol=1e-12
            )

    def test_state_carries_epoch_and_digest(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        assert state.epoch == 0
        assert state.order_digest == 0
        state.add_node(2)
        assert state.epoch == 1
        digest_one = state.order_digest
        state.add_node(4)
        assert state.epoch == 2
        assert state.order_digest != digest_one

    def test_threshold_solves_reuse_pool(self, medium_graph, variant,
                                         backend):
        serial = greedy_threshold_solve(
            medium_graph, threshold=0.5, variant=variant
        )
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        ) as pool:
            for _ in range(2):
                parallel = greedy_threshold_solve(
                    medium_graph, threshold=0.5, variant=variant,
                    parallel=pool,
                )
                assert parallel.retained == serial.retained


class TestSupervision:
    """Crashed and hung workers are restarted or surfaced, never hung on."""

    def test_crash_with_no_budget_raises_and_reaps(self, medium_graph,
                                                   variant, backend):
        csr = as_csr(medium_graph)
        pool = ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend,
            timeout_s=10.0, max_restarts=0,
        )
        pool.start()
        procs = list(pool._procs)
        shm_names = [block.name for block in pool._shm_blocks]
        os.kill(procs[0].pid, signal.SIGKILL)
        state = GreedyState(csr, variant)
        with pytest.raises(SolverError, match="restart budget"):
            pool.gains(state)
        assert pool._procs == []
        assert pool._shm_blocks == []
        _assert_reaped(procs)
        for name in shm_names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_crash_mid_solve_restarts_and_recovers(self, medium_graph,
                                                   variant, backend):
        serial = greedy_solve(
            medium_graph, k=8, variant=variant, strategy="naive"
        )
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend,
            timeout_s=10.0, max_restarts=2,
        ) as pool:
            victims = []

            def sabotage(iteration, node, gain, cover):
                if iteration == 1:
                    victim = pool._procs[0]
                    victims.append(victim)
                    os.kill(victim.pid, signal.SIGKILL)

            parallel = greedy_solve(
                medium_graph, k=8, variant=variant, strategy="naive",
                parallel=pool, callback=sabotage,
            )
        assert parallel.retained == serial.retained
        assert parallel.cover == serial.cover
        assert pool.restarts >= 1
        _assert_reaped(victims)

    def test_hung_worker_times_out_within_budget(self, medium_graph,
                                                 variant, backend):
        csr = as_csr(medium_graph)
        pool = ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend,
            timeout_s=0.5, max_restarts=0,
        )
        pool.start()
        procs = list(pool._procs)
        os.kill(procs[0].pid, signal.SIGSTOP)
        state = GreedyState(csr, variant)
        started = time.monotonic()
        with pytest.raises(SolverError, match="timed out"):
            pool.gains(state)
        assert time.monotonic() - started < 5.0
        assert pool.timeouts >= 1
        assert pool._procs == []
        _assert_reaped(procs)

    def test_hung_worker_restarts_and_recovers(self, medium_graph,
                                               variant, backend):
        csr = as_csr(medium_graph)
        serial = GreedyState(csr, variant).gains_all()
        pool = ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend,
            timeout_s=0.5, max_restarts=2,
        )
        with pool:
            stopped = pool._procs[1]
            os.kill(stopped.pid, signal.SIGSTOP)
            gains = pool.gains(GreedyState(csr, variant))
            np.testing.assert_allclose(gains, serial, atol=1e-12)
            assert pool.restarts >= 1
        _assert_reaped([stopped])

    def test_fork_unavailable_degrades_to_serial(self, monkeypatch,
                                                 small_graph, variant):
        monkeypatch.setattr(
            mp, "get_all_start_methods", lambda: ["spawn"]
        )
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=3)
        assert pool.backend == "serial"
        with pool:
            state = GreedyState(as_csr(small_graph), variant)
            np.testing.assert_array_equal(
                pool.gains(state), state.gains_all()
            )
        assert pool._procs == []

    def test_liveness_snapshot(self, medium_graph, variant, backend):
        pool = ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        )
        with pool:
            assert pool.liveness() == [True, True]
        assert pool.liveness() == []

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"max_restarts": -1},
    ])
    def test_invalid_supervision_params(self, small_graph, kwargs):
        with pytest.raises(SolverError):
            ParallelGainEvaluator(
                small_graph, "independent", n_workers=2, **kwargs
            )


class TestEmptyCuts:
    def test_more_workers_than_items(self, variant, backend):
        from repro.workloads.graphs import small_dense_graph

        graph = small_dense_graph(5, variant=variant, seed=3)
        with ParallelGainEvaluator(
            graph, variant, n_workers=8, backend=backend
        ) as pool:
            # Empty (lo, lo) blocks must not fork idle workers.
            assert 0 < len(pool._procs) <= 5
            assert all(hi > lo for lo, hi in pool._bounds)
            assert pool._bounds[0][0] == 0
            assert pool._bounds[-1][1] == 5
            state = GreedyState(as_csr(graph), variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )
            serial = greedy_solve(
                graph, k=3, variant=variant, strategy="naive"
            )
            parallel = greedy_solve(
                graph, k=3, variant=variant, strategy="naive",
                parallel=pool,
            )
            assert parallel.retained == serial.retained


class TestCostModel:
    def test_calibration_counts_work(self, medium_graph, variant):
        model = calibrate_cost_model(medium_graph, 10, variant)
        assert len(model.iteration_work) == 10
        csr = as_csr(medium_graph)
        # Iteration i touches all edges + (n - i) live self terms.
        expected0 = csr.n_edges + csr.n_items
        assert model.iteration_work[0] == expected0
        assert model.per_op_seconds > 0

    def test_runtime_decreases_with_workers(self, medium_graph):
        model = calibrate_cost_model(medium_graph, 10, "independent")
        times = [model.runtime(n) for n in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_speedup_saturates_with_sync_overhead(self):
        work = np.full(100, 10_000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=1e-4
        )
        # Ideal would be 32x; sync overhead keeps it below.
        assert model.speedup(32) < 32
        assert model.speedup(32) > 10  # but still "almost perfect"

    def test_speedup_curve_rows(self):
        work = np.full(10, 1000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=0.0
        )
        rows = speedup_curve(model, workers=(1, 2, 4))
        assert [r["workers"] for r in rows] == [1, 2, 4]
        assert rows[2]["speedup"] == pytest.approx(4.0)

    def test_invalid_worker_count(self):
        model = ParallelCostModel(
            iteration_work=np.ones(1), per_op_seconds=1.0, sync_seconds=0.0
        )
        with pytest.raises(SolverError):
            model.runtime(0)
