"""Tests for parallel gain evaluation and the work-span cost model."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.parallel import (
    ParallelCostModel,
    ParallelGainEvaluator,
    calibrate_cost_model,
    speedup_curve,
)
from repro.core.threshold import greedy_threshold_solve
from repro.errors import SolverError

BACKENDS = ("shm", "pipe")


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    """Parametrize a test over both wire protocols."""
    return request.param


class TestParallelGainEvaluator:
    def test_matches_serial_gains(self, medium_graph, variant, backend):
        csr = as_csr(medium_graph)
        with ParallelGainEvaluator(
            csr, variant, n_workers=3, backend=backend
        ) as pool:
            assert pool.backend == backend
            state = GreedyState(csr, variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )
            # After committing nodes, workers must observe the new state.
            state.add_node(5)
            state.add_node(99)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )

    def test_full_solve_same_solution(self, medium_graph, variant, backend):
        serial = greedy_solve(medium_graph, 20, variant, strategy="naive")
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=2, backend=backend
        ) as pool:
            parallel = greedy_solve(
                medium_graph, 20, variant, strategy="naive", parallel=pool
            )
        assert parallel.retained == serial.retained
        assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)

    def test_threshold_solve_same_solution(self, medium_graph, variant,
                                           backend):
        serial = greedy_threshold_solve(
            medium_graph, threshold=0.55, variant=variant
        )
        with ParallelGainEvaluator(
            medium_graph, variant, n_workers=3, backend=backend
        ) as pool:
            parallel = greedy_threshold_solve(
                medium_graph, threshold=0.55, variant=variant, parallel=pool
            )
        assert parallel.retained == serial.retained
        assert parallel.k == serial.k
        assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)

    def test_auto_prefers_shared_memory(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=2)
        assert pool.backend in ("shm", "pipe", "serial")
        if "fork" in mp.get_all_start_methods():
            assert pool.backend == "shm"

    def test_unknown_backend_rejected(self, small_graph):
        with pytest.raises(SolverError, match="parallel backend"):
            ParallelGainEvaluator(
                small_graph, "independent", n_workers=2, backend="zeromq"
            )

    def test_single_worker_is_serial(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=1)
        with pool:
            state = GreedyState(as_csr(small_graph), variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all()
            )
        assert pool._procs == []

    def test_invalid_worker_count(self, small_graph):
        with pytest.raises(SolverError, match="n_workers"):
            ParallelGainEvaluator(small_graph, "independent", n_workers=0)

    def test_edge_balanced_cuts_partition(self, medium_graph, variant):
        pool = ParallelGainEvaluator(medium_graph, variant, n_workers=4)
        cuts = pool._edge_balanced_cuts(as_csr(medium_graph).n_items, 4)
        assert cuts[0][0] == 0
        assert cuts[-1][1] == as_csr(medium_graph).n_items
        for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
            assert hi == lo  # contiguous, non-overlapping

    def test_close_is_idempotent(self, small_graph, variant, backend):
        pool = ParallelGainEvaluator(
            small_graph, variant, n_workers=2, backend=backend
        )
        pool.start()
        pool.close()
        pool.close()
        assert pool._shm_blocks == []


class TestWorkerCleanup:
    """Error paths must never leak worker processes or shared segments."""

    def _assert_no_children(self, procs):
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive()

    def test_worker_error_raises_and_reaps(self, medium_graph, variant,
                                           backend):
        csr = as_csr(medium_graph)
        pool = ParallelGainEvaluator(
            csr, variant, n_workers=2, backend=backend
        )
        pool.start()
        procs = list(pool._procs)
        assert procs
        # Poke the protocol with garbage: the worker reports the failure
        # instead of dying silently, and the parent tears the pool down.
        if backend == "shm":
            pool._conns[0].send_bytes(b"garbage")
        else:
            pool._conns[0].send(("garbage",))
        state = GreedyState(csr, variant)
        with pytest.raises(SolverError, match="worker"):
            pool.gains(state)
        assert pool._procs == []
        assert pool._shm_blocks == []
        self._assert_no_children(procs)

    def test_exit_reaps_after_midsolve_exception(self, medium_graph,
                                                 variant, backend):
        csr = as_csr(medium_graph)
        procs = []
        with pytest.raises(RuntimeError, match="mid-solve"):
            with ParallelGainEvaluator(
                csr, variant, n_workers=2, backend=backend
            ) as pool:
                pool.gains(GreedyState(csr, variant))
                procs = list(pool._procs)
                assert procs
                raise RuntimeError("mid-solve failure")
        self._assert_no_children(procs)
        assert pool._procs == []
        assert pool._shm_blocks == []

    def test_incompatible_state_raises_and_reaps(self, variant, backend):
        from repro.workloads.graphs import random_preference_graph

        big = random_preference_graph(300, variant=variant, seed=1)
        small = random_preference_graph(50, variant=variant, seed=2)
        pool = ParallelGainEvaluator(
            small, variant, n_workers=2, backend=backend
        )
        pool.start()
        procs = list(pool._procs)
        state = GreedyState(as_csr(big), variant)
        state.add_node(200)  # out of range for the pool's 50-node graph
        with pytest.raises(SolverError):
            # A state over a different graph cannot be evaluated; the
            # failure must be a SolverError, not a hang or a leak.
            pool.gains(state)
        self._assert_no_children(procs)
        assert pool._procs == []


class TestCostModel:
    def test_calibration_counts_work(self, medium_graph, variant):
        model = calibrate_cost_model(medium_graph, 10, variant)
        assert len(model.iteration_work) == 10
        csr = as_csr(medium_graph)
        # Iteration i touches all edges + (n - i) live self terms.
        expected0 = csr.n_edges + csr.n_items
        assert model.iteration_work[0] == expected0
        assert model.per_op_seconds > 0

    def test_runtime_decreases_with_workers(self, medium_graph):
        model = calibrate_cost_model(medium_graph, 10, "independent")
        times = [model.runtime(n) for n in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_speedup_saturates_with_sync_overhead(self):
        work = np.full(100, 10_000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=1e-4
        )
        # Ideal would be 32x; sync overhead keeps it below.
        assert model.speedup(32) < 32
        assert model.speedup(32) > 10  # but still "almost perfect"

    def test_speedup_curve_rows(self):
        work = np.full(10, 1000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=0.0
        )
        rows = speedup_curve(model, workers=(1, 2, 4))
        assert [r["workers"] for r in rows] == [1, 2, 4]
        assert rows[2]["speedup"] == pytest.approx(4.0)

    def test_invalid_worker_count(self):
        model = ParallelCostModel(
            iteration_work=np.ones(1), per_op_seconds=1.0, sync_seconds=0.0
        )
        with pytest.raises(SolverError):
            model.runtime(0)
