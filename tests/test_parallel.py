"""Tests for parallel gain evaluation and the work-span cost model."""

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.parallel import (
    ParallelCostModel,
    ParallelGainEvaluator,
    calibrate_cost_model,
    speedup_curve,
)
from repro.errors import SolverError


class TestParallelGainEvaluator:
    def test_matches_serial_gains(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        with ParallelGainEvaluator(csr, variant, n_workers=3) as pool:
            state = GreedyState(csr, variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )
            # After committing nodes, replicas must stay in sync.
            state.add_node(5)
            state.add_node(99)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all(), atol=1e-12
            )

    def test_full_solve_same_solution(self, medium_graph, variant):
        serial = greedy_solve(medium_graph, 20, variant, strategy="naive")
        with ParallelGainEvaluator(medium_graph, variant, n_workers=2) as pool:
            parallel = greedy_solve(
                medium_graph, 20, variant, strategy="naive", parallel=pool
            )
        assert parallel.retained == serial.retained
        assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)

    def test_single_worker_is_serial(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=1)
        with pool:
            state = GreedyState(as_csr(small_graph), variant)
            np.testing.assert_allclose(
                pool.gains(state), state.gains_all()
            )
        assert pool._procs == []

    def test_invalid_worker_count(self, small_graph):
        with pytest.raises(SolverError, match="n_workers"):
            ParallelGainEvaluator(small_graph, "independent", n_workers=0)

    def test_edge_balanced_cuts_partition(self, medium_graph, variant):
        pool = ParallelGainEvaluator(medium_graph, variant, n_workers=4)
        cuts = pool._edge_balanced_cuts(as_csr(medium_graph).n_items, 4)
        assert cuts[0][0] == 0
        assert cuts[-1][1] == as_csr(medium_graph).n_items
        for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
            assert hi == lo  # contiguous, non-overlapping

    def test_close_is_idempotent(self, small_graph, variant):
        pool = ParallelGainEvaluator(small_graph, variant, n_workers=2)
        pool.start()
        pool.close()
        pool.close()


class TestCostModel:
    def test_calibration_counts_work(self, medium_graph, variant):
        model = calibrate_cost_model(medium_graph, 10, variant)
        assert len(model.iteration_work) == 10
        csr = as_csr(medium_graph)
        # Iteration i touches all edges + (n - i) live self terms.
        expected0 = csr.n_edges + csr.n_items
        assert model.iteration_work[0] == expected0
        assert model.per_op_seconds > 0

    def test_runtime_decreases_with_workers(self, medium_graph):
        model = calibrate_cost_model(medium_graph, 10, "independent")
        times = [model.runtime(n) for n in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_speedup_saturates_with_sync_overhead(self):
        work = np.full(100, 10_000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=1e-4
        )
        # Ideal would be 32x; sync overhead keeps it below.
        assert model.speedup(32) < 32
        assert model.speedup(32) > 10  # but still "almost perfect"

    def test_speedup_curve_rows(self):
        work = np.full(10, 1000.0)
        model = ParallelCostModel(
            iteration_work=work, per_op_seconds=1e-6, sync_seconds=0.0
        )
        rows = speedup_curve(model, workers=(1, 2, 4))
        assert [r["workers"] for r in rows] == [1, 2, 4]
        assert rows[2]["speedup"] == pytest.approx(4.0)

    def test_invalid_worker_count(self):
        model = ParallelCostModel(
            iteration_work=np.ones(1), per_op_seconds=1.0, sync_seconds=0.0
        )
        with pytest.raises(SolverError):
            model.runtime(0)
