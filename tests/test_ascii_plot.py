"""Tests for the terminal plotting helpers."""

import pytest

from repro.errors import SolverError
from repro.evaluation.ascii_plot import bar_chart, figure_4c_plot, line_plot


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [1.0, 1000.0], width=30)
        logscale = bar_chart(["a", "b"], [1.0, 1000.0], width=30,
                             log_scale=True)
        # Linear: first bar vanishes; log: annotated and still ordered.
        assert "(log scale)" in logscale
        assert linear.splitlines()[0].count("#") == 0

    def test_title_and_values(self):
        text = bar_chart(["x"], [0.5], title="T", value_format="{:.2f}")
        assert text.startswith("T")
        assert "0.50" in text

    def test_zero_values_safe(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in text

    def test_log_scale_with_zeros(self):
        text = bar_chart(["a", "b"], [0.0, 10.0], log_scale=True)
        assert text  # no crash; zero draws empty bar

    def test_validation(self):
        with pytest.raises(SolverError, match="equal length"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(SolverError, match="width"):
            bar_chart(["a"], [1.0], width=0)

    def test_empty(self):
        assert bar_chart([], [], title="none") == "none"


class TestLinePlot:
    def test_grid_dimensions(self):
        text = line_plot(
            [0, 1], {"s": [0.0, 1.0]}, width=20, height=5
        )
        lines = text.splitlines()
        # frame: top border + 5 rows + bottom border + 2 footer lines.
        assert len(lines) == 9
        assert all("|" in line for line in lines[1:6])

    def test_markers_placed_at_extremes(self):
        text = line_plot(
            [0, 1], {"s": [0.0, 1.0]}, width=10, height=4,
            y_min=0, y_max=1,
        )
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].strip(" |").startswith("")  # top row exists
        assert "o" in rows[0]      # y=1 at top
        assert "o" in rows[-1]     # y=0 at bottom

    def test_legend_lists_all_series(self):
        text = line_plot(
            [0, 1], {"alpha": [0, 1], "beta": [1, 0]},
            width=10, height=4,
        )
        assert "o alpha" in text
        assert "x beta" in text

    def test_series_length_mismatch(self):
        with pytest.raises(SolverError, match="points"):
            line_plot([0, 1], {"s": [1.0]})

    def test_too_many_series(self):
        series = {f"s{i}": [0, 1] for i in range(9)}
        with pytest.raises(SolverError, match="at most"):
            line_plot([0, 1], series)

    def test_flat_series_safe(self):
        text = line_plot([0, 1], {"s": [0.5, 0.5]}, width=8, height=3)
        assert "o" in text

    def test_empty(self):
        assert line_plot([], {}, title="none") == "none"


class TestFigure4cPlot:
    def test_renders_curve_rows(self, medium_graph):
        from repro.evaluation.curves import coverage_curve

        rows = coverage_curve(
            medium_graph, "independent",
            fractions=(0.1, 0.5, 0.9),
            algorithms=("greedy", "random"),
            seed=0,
        )
        text = figure_4c_plot(rows, width=40)
        assert "coverage vs k/n" in text
        assert "o greedy" in text
        assert "x random" in text
