"""End-to-end checks of every number the paper quotes in its examples.

Covers Example 1.1, Example 3.2, the Figure 2 walkthrough and the
Figure 3 graph-construction example.
"""

import pytest

from repro import (
    brute_force_solve,
    cover,
    greedy_solve,
    item_coverage,
    top_k_weight_solve,
)
from repro.adaptation import build_preference_graph
from repro.clickstream import sessions_from_dicts
from repro.core.csr import as_csr
from repro.examples_data import (
    FIGURE1_OPTIMAL_COVER,
    FIGURE1_OPTIMAL_PAIR,
    FIGURE1_TOP2_COVER,
    figure1_graph,
    figure3_graph,
    figure3_sessions,
)


class TestExample11:
    """Example 1.1: naive top sellers vs the optimal pair."""

    def test_a_is_best_seller(self):
        graph = figure1_graph()
        assert graph.node_weight("A") == pytest.approx(0.33)
        assert max(graph.items(), key=graph.node_weight) == "A"

    def test_d_is_least_sold(self):
        graph = figure1_graph()
        assert graph.node_weight("D") == pytest.approx(0.06)
        assert min(graph.items(), key=graph.node_weight) == "D"

    def test_top_sellers_cover_77_percent(self, variant):
        graph = figure1_graph()
        result = top_k_weight_solve(graph, 2, variant)
        assert set(result.retained) == {"A", "B"}
        assert result.cover == pytest.approx(FIGURE1_TOP2_COVER)

    def test_optimal_pair_is_b_and_d(self, variant):
        graph = figure1_graph()
        result = brute_force_solve(graph, 2, variant)
        assert tuple(sorted(result.retained)) == FIGURE1_OPTIMAL_PAIR
        assert result.cover == pytest.approx(FIGURE1_OPTIMAL_COVER)

    def test_weights_sum_to_one(self):
        graph = figure1_graph()
        graph.validate("normalized")
        graph.validate("independent")


class TestExample32:
    """Example 3.2: the greedy's two iterations, gain by gain."""

    def test_first_pick_is_b_with_gain_066(self, variant):
        graph = figure1_graph()
        result = greedy_solve(graph, 2, variant)
        assert result.retained[0] == "B"
        assert result.prefix_covers[1] == pytest.approx(0.66)

    def test_second_pick_is_d_with_gain_0213(self, variant):
        graph = figure1_graph()
        result = greedy_solve(graph, 2, variant)
        assert result.retained[1] == "D"
        marginal = result.prefix_covers[2] - result.prefix_covers[1]
        assert marginal == pytest.approx(0.213)

    def test_marginal_gains_quoted_in_example(self):
        # After retaining B: A's remaining gain is 11%, C's is 0%.
        from repro.core.gain import GreedyState

        graph = figure1_graph()
        csr = as_csr(graph)
        state = GreedyState(csr, "normalized")
        state.add_node(csr.index_of("B"))
        assert state.gain(csr.index_of("A")) == pytest.approx(0.11)
        assert state.gain(csr.index_of("C")) == pytest.approx(0.0)
        assert state.gain(csr.index_of("D")) == pytest.approx(0.213)

    def test_greedy_matches_optimum_here(self, variant):
        graph = figure1_graph()
        greedy = greedy_solve(graph, 2, variant)
        optimal = brute_force_solve(graph, 2, variant)
        assert greedy.cover == pytest.approx(optimal.cover)


class TestFigure2Walkthrough:
    """The architecture figure's reported per-item coverage."""

    def test_item_coverage_values(self, variant):
        graph = figure1_graph()
        csr = as_csr(graph)
        conditional = item_coverage(csr, ["B", "D"], variant)
        values = {csr.items[i]: conditional[i] for i in range(5)}
        assert values["B"] == pytest.approx(1.0)
        assert values["D"] == pytest.approx(1.0)
        assert values["C"] == pytest.approx(1.0)     # fully covered by B
        assert values["A"] == pytest.approx(2 / 3)   # 67%
        assert values["E"] == pytest.approx(0.9)     # 90%


class TestFigure3Construction:
    """Figure 3: clickstream -> preference graph, exactly."""

    def test_adaptation_reproduces_figure3_graph(self):
        stream = sessions_from_dicts(figure3_sessions())
        built = build_preference_graph(stream, "normalized")
        expected = figure3_graph()
        assert set(built.items()) == set(expected.items())
        for item in expected.items():
            assert built.node_weight(item) == pytest.approx(
                expected.node_weight(item)
            )
        assert sorted(built.edges()) == sorted(expected.edges())

    def test_normalized_fit_is_perfect(self):
        # "No session implies more than one alternative."
        from repro.adaptation import normalized_fit

        stream = sessions_from_dicts(figure3_sessions())
        assert normalized_fit(stream) == 1.0

    def test_node_weights(self):
        graph = figure3_graph()
        graph.validate("normalized")
        weights = sorted(
            graph.node_weight(item) for item in graph.items()
        )
        assert weights == pytest.approx([0.2, 0.4, 0.4])

    def test_independent_construction_identical_here(self):
        # Every session has at most one alternative, so the 1/t
        # normalization never fires and both engines agree.
        stream = sessions_from_dicts(figure3_sessions())
        norm = build_preference_graph(stream, "normalized")
        indep = build_preference_graph(stream, "independent")
        assert sorted(norm.edges()) == sorted(indep.edges())
