"""Tests for DS_k and its reduction to IPC_k (Theorem 4.1)."""

import numpy as np
import pytest

from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.errors import GraphValidationError, SolverError
from repro.reductions.dominating_set import (
    DirectedGraphInstance,
    dominated_count,
    ds_to_ipc,
    greedy_dominating_set,
)


def random_instance(n, m, seed) -> DirectedGraphInstance:
    rng = np.random.default_rng(seed)
    edges = tuple(
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, m), rng.integers(0, n, m))
    )
    return DirectedGraphInstance(n=n, edges=edges)


class TestDominatedCount:
    def test_counts_set_and_out_neighbors(self):
        g = DirectedGraphInstance(n=4, edges=((0, 1), (1, 2), (3, 0)))
        assert dominated_count(g, [0]) == 2  # {0, 1}
        assert dominated_count(g, [3]) == 2  # {3, 0}
        assert dominated_count(g, [0, 1]) == 3  # {0, 1, 2}

    def test_empty_set(self):
        g = DirectedGraphInstance(n=3, edges=())
        assert dominated_count(g, []) == 0

    def test_edge_validation(self):
        with pytest.raises(GraphValidationError):
            DirectedGraphInstance(n=2, edges=((0, 7),))


class TestGreedyDS:
    def test_star_graph_picks_center(self):
        g = DirectedGraphInstance(
            n=5, edges=((0, 1), (0, 2), (0, 3), (0, 4))
        )
        selected, count = greedy_dominating_set(g, 1)
        assert selected == [0]
        assert count == 5

    def test_full_selection_dominates_all(self):
        g = random_instance(8, 15, seed=1)
        _, count = greedy_dominating_set(g, 8)
        assert count == 8

    def test_monotone_in_k(self):
        g = random_instance(12, 25, seed=2)
        counts = [greedy_dominating_set(g, k)[1] for k in range(1, 6)]
        assert counts == sorted(counts)

    def test_k_validation(self):
        g = random_instance(3, 3, seed=3)
        with pytest.raises(SolverError):
            greedy_dominating_set(g, 4)


class TestReduction:
    """dominated_count(G, S) == n * C(S) on the reduced IPC instance."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_objective_preserved(self, seed):
        g = random_instance(14, 30, seed)
        reduced = ds_to_ipc(g)
        reduced.validate("independent")
        rng = np.random.default_rng(seed + 50)
        for _ in range(15):
            size = int(rng.integers(0, 15))
            subset = [int(x) for x in rng.choice(14, size=size, replace=False)]
            assert dominated_count(g, subset) == pytest.approx(
                14 * cover(reduced, subset, "independent"), abs=1e-9
            )

    def test_edges_reversed(self):
        g = DirectedGraphInstance(n=2, edges=((0, 1),))
        reduced = ds_to_ipc(g)
        assert reduced.has_edge(1, 0)
        assert not reduced.has_edge(0, 1)

    def test_uniform_node_weights(self):
        reduced = ds_to_ipc(random_instance(10, 20, seed=4))
        for item in reduced.items():
            assert reduced.node_weight(item) == pytest.approx(0.1)

    def test_greedy_equivalence(self):
        # Greedy on the reduced IPC instance dominates exactly as many
        # vertices as greedy DS (both implement max marginal gain).
        g = random_instance(12, 28, seed=5)
        reduced = ds_to_ipc(g)
        ds_selected, ds_count = greedy_dominating_set(g, 4)
        ipc = greedy_solve(reduced, 4, "independent")
        assert dominated_count(g, ipc.retained) == ds_count

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            ds_to_ipc(DirectedGraphInstance(n=0, edges=()))
