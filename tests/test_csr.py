"""Tests for repro.core.csr.CSRGraph."""

import numpy as np
import pytest

from repro.core.csr import CSRGraph, as_csr
from repro.core.graph import PreferenceGraph
from repro.errors import GraphValidationError, UnknownItemError


@pytest.fixture
def csr() -> CSRGraph:
    graph = PreferenceGraph.from_weights(
        {"A": 0.4, "B": 0.3, "C": 0.2, "D": 0.1},
        edges=[
            ("A", "B", 0.5),
            ("B", "A", 0.2),
            ("B", "C", 0.3),
            ("D", "C", 0.9),
        ],
    )
    return graph.to_csr()


class TestConstruction:
    def test_shape(self, csr):
        assert csr.n_items == 4
        assert csr.n_edges == 4
        assert len(csr) == 4

    def test_from_arrays_defaults_items(self):
        g = CSRGraph.from_arrays(
            np.array([0.5, 0.5]),
            np.array([0]),
            np.array([1]),
            np.array([0.3]),
        )
        assert g.items == [0, 1]

    def test_from_arrays_rejects_length_mismatch(self):
        with pytest.raises(GraphValidationError, match="equal length"):
            CSRGraph.from_arrays(
                np.array([1.0]), np.array([0]), np.array([0, 0]),
                np.array([0.5]),
            )

    def test_from_arrays_rejects_out_of_range(self):
        with pytest.raises(GraphValidationError, match="out of range"):
            CSRGraph.from_arrays(
                np.array([0.5, 0.5]), np.array([0]), np.array([5]),
                np.array([0.5]),
            )

    def test_from_arrays_rejects_self_edges(self):
        with pytest.raises(GraphValidationError, match="self-edges"):
            CSRGraph.from_arrays(
                np.array([0.5, 0.5]), np.array([1]), np.array([1]),
                np.array([0.5]),
            )

    def test_from_arrays_rejects_wrong_item_count(self):
        with pytest.raises(GraphValidationError, match="items length"):
            CSRGraph.from_arrays(
                np.array([0.5, 0.5]), np.array([0]), np.array([1]),
                np.array([0.5]), items=["only-one"],
            )

    def test_arrays_are_readonly(self, csr):
        with pytest.raises(ValueError):
            csr.node_weight[0] = 9.0
        with pytest.raises(ValueError):
            csr.in_weight[0] = 9.0


class TestEdgeAccess:
    def test_in_edges_grouped_by_destination(self, csr):
        c = csr.index_of("C")
        sources, weights = csr.in_edges(c)
        got = {csr.items[s]: w for s, w in zip(sources, weights)}
        assert got == {"B": 0.3, "D": 0.9}

    def test_out_edges_grouped_by_source(self, csr):
        b = csr.index_of("B")
        targets, weights = csr.out_edges(b)
        got = {csr.items[t]: w for t, w in zip(targets, weights)}
        assert got == {"A": 0.2, "C": 0.3}

    def test_empty_slices(self, csr):
        a = csr.index_of("A")
        sources, _ = csr.in_edges(a)
        assert list(csr.items[s] for s in sources) == ["B"]
        d = csr.index_of("D")
        sources, _ = csr.in_edges(d)
        assert sources.size == 0

    def test_degrees(self, csr):
        in_deg = {csr.items[i]: d for i, d in enumerate(csr.in_degrees())}
        out_deg = {csr.items[i]: d for i, d in enumerate(csr.out_degrees())}
        assert in_deg == {"A": 1, "B": 1, "C": 2, "D": 0}
        assert out_deg == {"A": 1, "B": 2, "C": 0, "D": 1}
        assert csr.max_in_degree() == 2

    def test_out_weight_sums(self, csr):
        sums = csr.out_weight_sums()
        assert sums[csr.index_of("B")] == pytest.approx(0.5)
        assert sums[csr.index_of("C")] == 0.0

    def test_index_of_unknown(self, csr):
        with pytest.raises(UnknownItemError):
            csr.index_of("Z")


class TestValidation:
    def test_valid(self, csr):
        csr.validate("independent")
        csr.validate("normalized")

    def test_weight_sum_violation(self):
        g = CSRGraph.from_arrays(
            np.array([0.9, 0.9]), np.array([0]), np.array([1]),
            np.array([0.5]),
        )
        with pytest.raises(GraphValidationError, match="sum to 1"):
            g.validate()

    def test_normalized_out_sum_violation(self):
        g = CSRGraph.from_arrays(
            np.array([0.5, 0.25, 0.25]),
            np.array([0, 0]),
            np.array([1, 2]),
            np.array([0.8, 0.8]),
        )
        g.validate("independent")
        with pytest.raises(GraphValidationError, match="out-weight"):
            g.validate("normalized")

    def test_edge_weight_violation(self):
        g = CSRGraph.from_arrays(
            np.array([0.5, 0.5]), np.array([0]), np.array([1]),
            np.array([1.5]),
        )
        with pytest.raises(GraphValidationError, match=r"\(0, 1\]"):
            g.validate()


class TestConversion:
    def test_roundtrip(self, csr):
        graph = csr.to_preference_graph()
        again = graph.to_csr()
        np.testing.assert_allclose(again.node_weight, csr.node_weight)
        assert again.n_edges == csr.n_edges

    def test_as_csr_idempotent(self, csr):
        assert as_csr(csr) is csr

    def test_as_csr_converts(self):
        g = PreferenceGraph.from_weights({"A": 1.0})
        assert isinstance(as_csr(g), CSRGraph)

    def test_repr(self, csr):
        assert "n_items=4" in repr(csr)


class TestDuplicateEdges:
    def test_from_arrays_rejects_duplicates(self):
        with pytest.raises(GraphValidationError, match="duplicate"):
            CSRGraph.from_arrays(
                np.array([0.5, 0.5]),
                np.array([0, 0]),
                np.array([1, 1]),
                np.array([0.3, 0.4]),
            )

    def test_distinct_pairs_accepted(self):
        g = CSRGraph.from_arrays(
            np.array([0.4, 0.3, 0.3]),
            np.array([0, 1]),
            np.array([1, 0]),
            np.array([0.3, 0.4]),
        )
        assert g.n_edges == 2
