"""Tests for the exact MILP NPC_k solver."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_solve
from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.errors import SolverError
from repro.reductions.exact_milp import milp_solve_npc, milp_solve_vc
from repro.reductions.vertex_cover import (
    MaxVertexCoverInstance,
    vc_cover_weight,
)
from repro.workloads.graphs import random_preference_graph, small_dense_graph


class TestMilpVc:
    def test_matches_enumeration(self):
        import itertools

        rng = np.random.default_rng(0)
        edges = tuple(
            (int(u), int(v), float(w))
            for u, v, w in zip(
                rng.integers(0, 8, 20), rng.integers(0, 8, 20),
                rng.uniform(0.1, 1.0, 20),
            )
        )
        instance = MaxVertexCoverInstance(n=8, edges=edges)
        selected, value = milp_solve_vc(instance, 3)
        best = max(
            vc_cover_weight(instance, subset)
            for subset in itertools.combinations(range(8), 3)
        )
        assert value == pytest.approx(best, abs=1e-9)
        assert len(selected) == 3

    def test_empty_instance(self):
        instance = MaxVertexCoverInstance(n=5, edges=())
        selected, value = milp_solve_vc(instance, 2)
        assert value == 0.0
        assert len(selected) == 2

    def test_k_validation(self):
        instance = MaxVertexCoverInstance(n=3, edges=((0, 1, 1.0),))
        with pytest.raises(SolverError):
            milp_solve_vc(instance, 7)


class TestMilpNpc:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 5, 8])
    def test_matches_brute_force(self, seed, k):
        graph = small_dense_graph(11, variant="normalized", seed=seed)
        exact = milp_solve_npc(graph, k)
        reference = brute_force_solve(graph, k, "normalized")
        assert exact.cover == pytest.approx(reference.cover, abs=1e-9)

    def test_figure1_optimum(self, figure1):
        exact = milp_solve_npc(figure1, 2)
        assert sorted(exact.retained) == ["B", "D"]
        assert exact.cover == pytest.approx(0.873)

    def test_cover_consistent(self):
        graph = random_preference_graph(100, variant="normalized", seed=3)
        exact = milp_solve_npc(graph, 20)
        assert exact.cover == pytest.approx(
            cover(graph, exact.retained, "normalized"), abs=1e-9
        )

    def test_dominates_greedy_beyond_bruteforce_scale(self):
        # The point of the MILP oracle: optimality certificates at sizes
        # enumeration cannot touch.
        graph = random_preference_graph(150, variant="normalized", seed=4)
        for k in (15, 40):
            exact = milp_solve_npc(graph, k)
            greedy = greedy_solve(graph, k, "normalized")
            assert exact.cover >= greedy.cover - 1e-9
            # And greedy stays near-optimal, per the paper's observation.
            assert greedy.cover >= 0.97 * exact.cover

    def test_strategy_label(self, figure1):
        assert milp_solve_npc(figure1, 1).strategy == "milp-exact"
