"""Tests for SolveResult."""

import numpy as np
import pytest

from repro.core.greedy import greedy_solve
from repro.core.csr import as_csr
from repro.errors import SolverError


@pytest.fixture
def result(figure1):
    return greedy_solve(figure1, 3, "normalized")


class TestSolveResult:
    def test_cover_at(self, result):
        assert result.cover_at(0) == 0.0
        assert result.cover_at(1) == pytest.approx(0.66)
        assert result.cover_at(2) == pytest.approx(0.873)

    def test_cover_at_out_of_range(self, result):
        with pytest.raises(SolverError, match="out of range"):
            result.cover_at(4)
        with pytest.raises(SolverError, match="out of range"):
            result.cover_at(-1)

    def test_prefix(self, result):
        assert result.prefix(2) == ["B", "D"]
        assert result.prefix(0) == []

    def test_prefix_out_of_range(self, result):
        with pytest.raises(SolverError, match="out of range"):
            result.prefix(99)

    def test_item_coverage(self, result, figure1):
        csr = as_csr(figure1)
        conditional = result.item_coverage(csr.node_weight)
        for index in result.retained_indices:
            assert conditional[index] == pytest.approx(1.0)

    def test_item_coverage_zero_weight_safe(self, result):
        weights = np.zeros(5)
        conditional = result.item_coverage(weights)
        assert np.all(conditional == 0.0)

    def test_to_dict_roundtrips_json(self, result):
        import json

        payload = json.dumps(result.to_dict())
        loaded = json.loads(payload)
        assert loaded["variant"] == "normalized"
        assert loaded["k"] == 3
        assert loaded["retained"][:2] == ["B", "D"]

    def test_repr(self, result):
        assert "normalized" in repr(result)
        assert "k=3" in repr(result)

    def test_coverage_sums_to_cover(self, result):
        assert result.coverage.sum() == pytest.approx(result.cover)

    def test_frozen(self, result):
        with pytest.raises(AttributeError):
            result.cover = 0.0
