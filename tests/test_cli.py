"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "stream.jsonl"
    code = main([
        "generate", "--dataset", "YC", "--scale", "0.002",
        "--seed", "1", "-o", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_custom_model(self, tmp_path, capsys):
        path = tmp_path / "custom.jsonl"
        code = main([
            "generate", "--items", "50", "--sessions", "500",
            "--behavior", "normalized", "--seed", "2", "-o", str(path),
        ])
        assert code == 0
        assert path.exists()
        assert "500 sessions" in capsys.readouterr().out

    def test_yoochoose_output(self, tmp_path):
        path = tmp_path / "s.jsonl"
        prefix = str(tmp_path / "yc")
        code = main([
            "generate", "--items", "30", "--sessions", "200",
            "--seed", "3", "-o", str(path),
            "--yoochoose-prefix", prefix,
        ])
        assert code == 0
        assert (tmp_path / "yc-clicks.dat").exists()
        assert (tmp_path / "yc-buys.dat").exists()


class TestBuildGraphAndSolve:
    def test_build_then_solve_k(self, stream_file, tmp_path, capsys):
        graph_path = tmp_path / "graph.json"
        assert main([
            "build-graph", str(stream_file), "--variant", "independent",
            "-o", str(graph_path),
        ]) == 0
        out_path = tmp_path / "result.json"
        assert main([
            "solve", str(graph_path), "--variant", "independent",
            "-k", "10", "-o", str(out_path),
        ]) == 0
        captured = capsys.readouterr().out
        assert "cover C(S)" in captured
        payload = json.loads(out_path.read_text())
        assert payload["k"] == 10
        assert len(payload["retained"]) == 10

    def test_solve_threshold(self, stream_file, tmp_path, capsys):
        graph_path = tmp_path / "graph.json"
        main(["build-graph", str(stream_file), "--variant", "independent",
              "-o", str(graph_path)])
        assert main([
            "solve", str(graph_path), "--variant", "independent",
            "--threshold", "0.5",
        ]) == 0
        assert "cover C(S)" in capsys.readouterr().out

    def test_solve_requires_objective(self, stream_file, tmp_path, capsys):
        graph_path = tmp_path / "graph.json"
        main(["build-graph", str(stream_file), "--variant", "independent",
              "-o", str(graph_path)])
        code = main(["solve", str(graph_path), "--variant", "independent"])
        assert code == 2

    def test_auto_variant_message(self, stream_file, tmp_path, capsys):
        graph_path = tmp_path / "graph.json"
        main(["build-graph", str(stream_file), "-o", str(graph_path)])
        assert "variant selected from data" in capsys.readouterr().out

    def test_solve_rejects_k_and_threshold(
        self, stream_file, tmp_path, capsys
    ):
        graph_path = tmp_path / "graph.json"
        main(["build-graph", str(stream_file), "--variant", "independent",
              "-o", str(graph_path)])
        code = main([
            "solve", str(graph_path), "--variant", "independent",
            "-k", "5", "--threshold", "0.5",
        ])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_solve_trace_one_event_per_iteration(
        self, stream_file, tmp_path, capsys
    ):
        graph_path = tmp_path / "graph.json"
        main(["build-graph", str(stream_file), "--variant", "independent",
              "-o", str(graph_path)])
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "solve", str(graph_path), "--variant", "independent",
            "-k", "8", "--trace", str(trace_path), "--metrics",
        ])
        assert code == 0
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        iterations = [e for e in events if e["kind"] == "iteration"]
        assert len(iterations) == 8
        assert [e["iteration"] for e in iterations] == list(range(8))
        assert all("item" in e and "gain" in e for e in iterations)
        out = capsys.readouterr().out
        assert "written to" in out
        assert "solver.iterations" in out  # --metrics summary printed


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestPipelineCommand:
    def test_end_to_end(self, stream_file, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main([
            "pipeline", str(stream_file), "-k", "10",
            "-o", str(out_path), "--show", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved cover" in out
        assert "top retained items" in out
        assert json.loads(out_path.read_text())["k"] == 10

    def test_threshold_mode(self, stream_file, capsys):
        code = main([
            "pipeline", str(stream_file), "--threshold", "0.6",
            "--variant", "independent",
        ])
        assert code == 0


class TestStats:
    def test_dataset_registry(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for name in ("PE", "PF", "PM", "YC"):
            assert name in out

    def test_clickstream_stats(self, stream_file, capsys):
        assert main(["stats", "--clickstream", str(stream_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sessions"] > 0
        assert "recommended_variant" in payload


class TestErrors:
    def test_repro_errors_become_exit_code_one(self, tmp_path, capsys):
        # A clickstream with no purchases cannot be adapted.
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"session_id": "s", "clicks": ["x"]}\n')
        code = main(["pipeline", str(empty), "-k", "5"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_differential_smoke_passes(self, capsys):
        code = main([
            "check", "--differential", "--smoke",
            "--instances", "2", "--max-items", "32",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "differential:" in captured
        assert "OK" in captured

    def test_verbose_prints_progress(self, capsys):
        code = main([
            "check", "--differential", "--instances", "1",
            "--max-items", "24", "--verbose",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "failure(s) so far" in captured

    def test_requires_differential_flag(self, capsys):
        code = main(["check"])
        assert code == 2
        assert "--differential" in capsys.readouterr().err
