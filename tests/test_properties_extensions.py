"""Property-based tests (hypothesis) for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.extensions.capacity import budget_spent, capacity_greedy_solve
from repro.extensions.quotas import category_counts, quota_greedy_solve
from repro.extensions.revenue import expected_revenue, revenue_greedy_solve
from repro.workloads.graphs import random_preference_graph

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw):
    """A random graph plus a variant and a budget k."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=5, max_value=60))
    variant = draw(st.sampled_from(["independent", "normalized"]))
    graph = random_preference_graph(n, variant=variant, seed=seed)
    k = draw(st.integers(min_value=0, max_value=n))
    return graph, variant, k


class TestRevenueProperties:
    @SETTINGS
    @given(instances(), st.floats(min_value=0.1, max_value=100.0))
    def test_uniform_scaling_preserves_selection(self, instance, scale):
        graph, variant, k = instance
        revenues = np.full(graph.n_items, scale)
        scaled = revenue_greedy_solve(graph, k, variant, revenues)
        plain = greedy_solve(graph, k, variant)
        assert scaled.retained == plain.retained
        assert scaled.cover == pytest.approx(plain.cover * scale, rel=1e-9)

    @SETTINGS
    @given(instances(), st.integers(min_value=0, max_value=10_000))
    def test_revenue_objective_consistency(self, instance, rev_seed):
        graph, variant, k = instance
        revenues = np.random.default_rng(rev_seed).uniform(
            0.5, 20.0, graph.n_items
        )
        result = revenue_greedy_solve(graph, k, variant, revenues)
        assert result.cover == pytest.approx(
            expected_revenue(graph, result.retained, variant, revenues),
            abs=1e-9,
        )

    @SETTINGS
    @given(instances(), st.integers(min_value=0, max_value=10_000))
    def test_optimizing_revenue_never_loses_revenue(self, instance, rev_seed):
        graph, variant, k = instance
        revenues = np.random.default_rng(rev_seed).uniform(
            0.5, 20.0, graph.n_items
        )
        aware = revenue_greedy_solve(graph, k, variant, revenues)
        blind = greedy_solve(graph, k, variant)
        blind_revenue = expected_revenue(
            graph, blind.retained, variant, revenues
        )
        # Not a theorem for greedy in general, but holding empirically
        # within a generous slack: both greedy runs approximate their
        # own objectives, and the aware one targets revenue directly.
        assert aware.cover >= blind_revenue * 0.8 - 1e-9


class TestCapacityProperties:
    @SETTINGS
    @given(
        instances(),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_budget_always_respected(self, instance, cost_seed, budget):
        graph, variant, _k = instance
        costs = np.random.default_rng(cost_seed).uniform(
            0.2, 3.0, graph.n_items
        )
        result = capacity_greedy_solve(graph, budget, variant, costs)
        assert budget_spent(graph, result.retained, costs) <= budget + 1e-9

    @SETTINGS
    @given(instances(), st.integers(min_value=0, max_value=10_000))
    def test_more_budget_never_hurts(self, instance, cost_seed):
        graph, variant, _k = instance
        costs = np.random.default_rng(cost_seed).uniform(
            0.2, 3.0, graph.n_items
        )
        small = capacity_greedy_solve(graph, 5.0, variant, costs)
        large = capacity_greedy_solve(graph, 20.0, variant, costs)
        assert large.cover >= small.cover - 1e-9


class TestQuotaProperties:
    @SETTINGS
    @given(
        instances(),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10),
    )
    def test_quotas_never_violated(self, instance, n_categories, quota):
        graph, variant, k = instance
        categories = {
            item: f"c{i % n_categories}"
            for i, item in enumerate(graph.items)
        }
        quotas = {f"c{i}": quota for i in range(n_categories)}
        result = quota_greedy_solve(
            graph, variant, categories, quotas, k=k
        )
        counts = category_counts(result, categories)
        for category, count in counts.items():
            assert count <= quotas[category]
        assert result.k <= k
        assert result.cover == pytest.approx(
            cover(graph, result.retained, variant), abs=1e-9
        )

    @SETTINGS
    @given(instances())
    def test_infinite_quotas_match_unconstrained(self, instance):
        graph, variant, k = instance
        categories = {item: "everything" for item in graph.items}
        result = quota_greedy_solve(
            graph, variant, categories, {"everything": graph.n_items}, k=k
        )
        free = greedy_solve(graph, k, variant)
        assert result.cover == pytest.approx(free.cover, abs=1e-9)
