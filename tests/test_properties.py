"""Property-based tests (hypothesis) of the core invariants.

These generate random preference graphs and retained sets and check the
mathematical properties the paper's results rest on: the cover function's
set-function properties, the incremental bookkeeping identities, the
strategy equivalences, the prefix property, and the reduction
equivalences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cover import cover, coverage_vector
from repro.core.csr import CSRGraph
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.threshold import greedy_threshold_solve
from repro.core.variants import Variant
from repro.reductions.dominating_set import (
    DirectedGraphInstance,
    dominated_count,
    ds_to_ipc,
)
from repro.reductions.vertex_cover import npc_to_vc, vc_cover_weight

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def preference_graphs(draw, max_items=12, variant=None):
    """Random small preference graphs valid for the requested variant."""
    n = draw(st.integers(min_value=2, max_value=max_items))
    if variant is None:
        variant = draw(st.sampled_from(list(Variant)))
    raw = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n, max_size=n,
        )
    )
    weights = np.asarray(raw)
    weights = weights / weights.sum()

    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    n_edges = draw(st.integers(min_value=0, max_value=min(len(possible), 3 * n)))
    chosen = draw(
        st.lists(
            st.sampled_from(possible),
            min_size=n_edges, max_size=n_edges, unique=True,
        )
    ) if possible and n_edges else []
    edge_w = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=len(chosen), max_size=len(chosen),
            )
        )
    )
    if variant is Variant.NORMALIZED and len(chosen):
        # Scale per-source so out-sums stay below 1.
        sums = np.zeros(n)
        src = np.asarray([u for u, _v in chosen])
        np.add.at(sums, src, edge_w)
        scale = np.ones(n)
        heavy = sums > 0.98
        scale[heavy] = 0.98 / sums[heavy]
        edge_w = edge_w * scale[src]

    if chosen:
        csr = CSRGraph.from_arrays(
            weights,
            np.asarray([u for u, _v in chosen], dtype=np.int64),
            np.asarray([v for _u, v in chosen], dtype=np.int64),
            edge_w,
        )
    else:
        csr = CSRGraph.from_arrays(
            weights,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    csr.validate(variant)
    return csr, variant


@st.composite
def graph_and_sets(draw):
    """A graph plus two nested retained sets S ⊆ T and an extra node."""
    csr, variant = draw(preference_graphs())
    n = csr.n_items
    t_size = draw(st.integers(min_value=0, max_value=n))
    t = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=t_size, max_size=t_size, unique=True,
        )
    )
    s_size = draw(st.integers(min_value=0, max_value=len(t)))
    s = t[:s_size]
    v = draw(st.integers(min_value=0, max_value=n - 1))
    return csr, variant, s, t, v


class TestCoverProperties:
    @SETTINGS
    @given(graph_and_sets())
    def test_monotone(self, data):
        csr, variant, s, t, _v = data
        assert cover(csr, t, variant) >= cover(csr, s, variant) - 1e-12

    @SETTINGS
    @given(graph_and_sets())
    def test_submodular(self, data):
        csr, variant, s, t, v = data
        gain_s = cover(csr, list(s) + [v], variant) - cover(csr, s, variant)
        gain_t = cover(csr, list(t) + [v], variant) - cover(csr, t, variant)
        assert gain_s >= gain_t - 1e-12

    @SETTINGS
    @given(graph_and_sets())
    def test_bounds(self, data):
        csr, variant, s, _t, _v = data
        value = cover(csr, s, variant)
        retained_mass = float(csr.node_weight[list(set(s))].sum())
        assert retained_mass - 1e-12 <= value <= 1.0 + 1e-12

    @SETTINGS
    @given(graph_and_sets())
    def test_coverage_vector_consistency(self, data):
        csr, variant, s, _t, _v = data
        vec = coverage_vector(csr, s, variant)
        assert vec.sum() == pytest.approx(cover(csr, s, variant), abs=1e-12)
        assert np.all(vec >= -1e-15)
        assert np.all(vec <= csr.node_weight + 1e-12)


class TestStateProperties:
    @SETTINGS
    @given(graph_and_sets())
    def test_gain_equals_cover_delta(self, data):
        csr, variant, s, _t, v = data
        state = GreedyState(csr, variant)
        for node in s:
            state.add_node(node)
        expected = (
            cover(csr, list(s) + [v], variant) - cover(csr, s, variant)
        )
        assert state.gain(v) == pytest.approx(expected, abs=1e-10)

    @SETTINGS
    @given(graph_and_sets())
    def test_incremental_cover_identity(self, data):
        csr, variant, s, _t, _v = data
        state = GreedyState(csr, variant)
        for node in s:
            state.add_node(node)
        assert state.cover == pytest.approx(
            cover(csr, s, variant), abs=1e-10
        )
        assert state.cover == pytest.approx(
            float(state.coverage.sum()), abs=1e-10
        )

    @SETTINGS
    @given(graph_and_sets())
    def test_gains_all_matches_scalar(self, data):
        csr, variant, s, _t, _v = data
        state = GreedyState(csr, variant)
        for node in s:
            state.add_node(node)
        gains = state.gains_all()
        for v in range(csr.n_items):
            assert gains[v] == pytest.approx(state.gain(v), abs=1e-10)


class TestGreedyProperties:
    @SETTINGS
    @given(preference_graphs(), st.integers(min_value=0, max_value=12))
    def test_strategies_equal_cover(self, graph_variant, k_raw):
        csr, variant = graph_variant
        k = min(k_raw, csr.n_items)
        covers = {
            s: greedy_solve(csr, k, variant, strategy=s).cover
            for s in ("naive", "lazy", "accelerated")
        }
        assert covers["lazy"] == pytest.approx(covers["naive"], abs=1e-9)
        assert covers["accelerated"] == pytest.approx(
            covers["naive"], abs=1e-9
        )

    @SETTINGS
    @given(preference_graphs())
    def test_prefix_property(self, graph_variant):
        csr, variant = graph_variant
        n = csr.n_items
        full = greedy_solve(csr, n, variant)
        for k in (1, n // 2, n):
            partial = greedy_solve(csr, k, variant)
            assert full.retained[:k] == partial.retained

    @SETTINGS
    @given(preference_graphs(), st.floats(min_value=0.0, max_value=0.99))
    def test_threshold_is_shortest_prefix(self, graph_variant, threshold):
        csr, variant = graph_variant
        result = greedy_threshold_solve(csr, threshold, variant)
        assert result.cover >= threshold - 1e-9
        full = greedy_solve(csr, csr.n_items, variant)
        if result.k > 0:
            assert full.prefix_covers[result.k - 1] < threshold


class TestReductionProperties:
    @SETTINGS
    @given(preference_graphs(variant=Variant.NORMALIZED), st.data())
    def test_npc_vc_equivalence(self, graph_variant, data):
        csr, variant = graph_variant
        instance, _items = npc_to_vc(csr)
        n = csr.n_items
        size = data.draw(st.integers(min_value=0, max_value=n))
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        assert vc_cover_weight(instance, subset) == pytest.approx(
            cover(csr, subset, "normalized"), abs=1e-9
        )

    @SETTINGS
    @given(st.data())
    def test_ds_ipc_equivalence(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        m = data.draw(st.integers(min_value=0, max_value=3 * n))
        edges = tuple(
            (
                data.draw(st.integers(min_value=0, max_value=n - 1)),
                data.draw(st.integers(min_value=0, max_value=n - 1)),
            )
            for _ in range(m)
        )
        graph = DirectedGraphInstance(n=n, edges=edges)
        reduced = ds_to_ipc(graph)
        size = data.draw(st.integers(min_value=0, max_value=n))
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        assert dominated_count(graph, subset) == pytest.approx(
            n * cover(reduced, subset, "independent"), abs=1e-9
        )
