"""Tests for the unified ``repro.solve`` facade."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import SolverError, SolverTrace, solve
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.extensions.capacity import capacity_greedy_solve
from repro.extensions.quotas import quota_greedy_solve


class TestDispatch:
    def test_exported_from_package_root(self):
        assert repro.solve is solve
        assert "solve" in repro.__all__

    def test_k_dispatches_to_greedy(self, small_graph, variant):
        result = solve(small_graph, variant=variant, k=4)
        direct = greedy_solve(small_graph, k=4, variant=variant)
        assert result.retained == direct.retained
        assert result.cover == pytest.approx(direct.cover)
        assert result.telemetry is not None

    def test_threshold_dispatch(self, small_graph, variant):
        result = solve(small_graph, variant=variant, threshold=0.5)
        assert result.strategy == "greedy-threshold"
        assert result.cover >= 0.5
        assert result.telemetry is not None

    def test_strategy_forwarded(self, small_graph, variant):
        result = solve(small_graph, variant=variant, k=3, strategy="naive")
        assert result.strategy == "greedy-naive"

    def test_must_retain_and_exclude(self, small_graph, variant):
        csr = as_csr(small_graph)
        keep, drop = csr.items[0], csr.items[1]
        result = solve(
            small_graph, variant=variant, k=4,
            constraints={"must_retain": [keep], "exclude": [drop]},
        )
        assert keep in result.retained
        assert drop not in result.retained

    def test_capacity_dispatch(self, small_graph, variant):
        csr = as_csr(small_graph)
        costs = {item: 1.0 + (i % 3) for i, item in enumerate(csr.items)}
        result = solve(
            small_graph, variant=variant,
            constraints={"budget": 5.0, "costs": costs},
        )
        direct = capacity_greedy_solve(
            small_graph, budget=5.0, variant=variant, costs=costs
        )
        assert result.retained == direct.retained
        assert sum(costs[item] for item in result.retained) <= 5.0
        assert result.prefix_covers is not None
        assert result.telemetry is not None

    def test_quota_dispatch(self, small_graph, variant):
        csr = as_csr(small_graph)
        categories = {
            item: ("even" if i % 2 == 0 else "odd")
            for i, item in enumerate(csr.items)
        }
        quotas = {"even": 2, "odd": 2}
        result = solve(
            small_graph, variant=variant, k=4,
            constraints={"categories": categories, "quotas": quotas},
        )
        direct = quota_greedy_solve(
            small_graph, variant=variant, categories=categories,
            quotas=quotas, k=4,
        )
        assert result.retained == direct.retained
        evens = sum(1 for item in result.retained
                    if categories[item] == "even")
        assert evens <= 2

    def test_revenue_dispatch(self, small_graph, variant):
        csr = as_csr(small_graph)
        revenues = {item: 1.0 + i for i, item in enumerate(csr.items)}
        result = solve(
            small_graph, variant=variant, k=3,
            objective={"revenue": revenues},
        )
        assert result.strategy.startswith("revenue-")
        assert len(result.retained) == 3

    def test_keyword_only(self, small_graph):
        with pytest.raises(TypeError):
            solve(small_graph, "independent", 3)  # noqa: deliberate misuse


class TestTelemetry:
    def test_metrics_only_by_default(self, small_graph, variant):
        result = solve(small_graph, variant=variant, k=3)
        telemetry = result.telemetry
        assert telemetry.trace is None
        assert telemetry.events == []
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["facade.calls"] == 1
        assert telemetry.metrics.timer("facade.solve").count == 1

    def test_trace_attached_when_given(self, small_graph, variant):
        tracer = SolverTrace()
        result = solve(small_graph, variant=variant, k=5, tracer=tracer)
        assert result.telemetry.trace is tracer
        assert result.telemetry.metrics is tracer.metrics
        assert len(tracer.events_of("iteration")) == 5

    def test_trace_iteration_count_matches_k_all_paths(
        self, small_graph, variant
    ):
        csr = as_csr(small_graph)
        costs = {item: 1.0 for item in csr.items}
        categories = {item: "all" for item in csr.items}
        # (kwargs, expected iteration events); seeded must_retain items
        # are committed before the greedy loop, so they emit none.
        cases = [
            (dict(k=4), 4),
            (dict(k=4, constraints={"must_retain": [csr.items[0]]}), 3),
            (dict(constraints={"budget": 4.0, "costs": costs}), 4),
            (dict(k=4, constraints={"categories": categories,
                                    "quotas": {"all": 4}}), 4),
            (dict(k=4, objective={"revenue": {i: 1.0 for i in csr.items}}),
             4),
        ]
        for kwargs, expected in cases:
            tracer = SolverTrace()
            result = solve(
                small_graph, variant=variant, tracer=tracer, **kwargs
            )
            iterations = tracer.events_of("iteration")
            assert len(result.retained) == 4, kwargs
            assert len(iterations) == expected, kwargs


class TestValidation:
    def test_k_and_threshold_rejected(self, small_graph):
        with pytest.raises(SolverError, match="mutually exclusive"):
            solve(small_graph, variant="independent", k=3, threshold=0.5)

    def test_no_stopping_rule_rejected(self, small_graph):
        with pytest.raises(SolverError, match="stopping rule"):
            solve(small_graph, variant="independent")

    def test_unknown_constraint_key(self, small_graph):
        with pytest.raises(SolverError, match="bogus"):
            solve(small_graph, variant="independent", k=3,
                  constraints={"bogus": 1})

    def test_unknown_objective_key(self, small_graph):
        with pytest.raises(SolverError, match="objective"):
            solve(small_graph, variant="independent", k=3,
                  objective={"profit": {}})

    def test_budget_requires_costs(self, small_graph):
        with pytest.raises(SolverError, match="budget"):
            solve(small_graph, variant="independent",
                  constraints={"budget": 2.0})

    def test_budget_excludes_k(self, small_graph):
        csr = as_csr(small_graph)
        costs = {item: 1.0 for item in csr.items}
        with pytest.raises(SolverError, match="budget"):
            solve(small_graph, variant="independent", k=3,
                  constraints={"budget": 2.0, "costs": costs})

    def test_threshold_rejects_constraints(self, small_graph):
        csr = as_csr(small_graph)
        with pytest.raises(SolverError, match="threshold"):
            solve(small_graph, variant="independent", threshold=0.5,
                  constraints={"exclude": [csr.items[0]]})

    def test_quotas_require_categories(self, small_graph):
        with pytest.raises(SolverError, match="quota"):
            solve(small_graph, variant="independent", k=3,
                  constraints={"quotas": {"a": 1}})

    def test_unknown_backend_rejected_without_workers(self, small_graph):
        # Eager validation: with workers unset no pool is ever built,
        # but a typo'd backend must still be rejected, not ignored.
        with pytest.raises(SolverError, match="parallel backend"):
            solve(small_graph, variant="independent", k=3,
                  parallel_backend="zeromq")

    def test_unknown_backend_rejected_with_one_worker(self, small_graph):
        with pytest.raises(SolverError, match="parallel backend"):
            solve(small_graph, variant="independent", k=3, workers=1,
                  parallel_backend="mpi")

    def test_threshold_workers_rejects_explicit_strategy(self, small_graph):
        # The parallel threshold path always uses the naive
        # recomputation rule; a requested strategy would be silently
        # ignored, so it must raise instead.
        with pytest.raises(SolverError, match="would be ignored"):
            solve(small_graph, variant="independent", threshold=0.5,
                  workers=2, strategy="accelerated")

    def test_threshold_workers_auto_strategy_ok(self, small_graph, variant):
        serial = solve(small_graph, variant=variant, threshold=0.5)
        pooled = solve(small_graph, variant=variant, threshold=0.5,
                       workers=2, strategy="auto")
        assert pooled.retained == serial.retained
        assert pooled.cover == pytest.approx(serial.cover)


class TestKeywordOnlyMigration:
    def test_legacy_positional_calls_warn_but_work(self, figure1):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = greedy_solve(figure1, 2, "normalized")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        modern = greedy_solve(figure1, k=2, variant="normalized")
        assert legacy.retained == modern.retained
        assert legacy.cover == pytest.approx(modern.cover)

    def test_keyword_calls_do_not_warn(self, figure1):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            greedy_solve(figure1, k=2, variant="normalized")
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_positional_and_keyword_conflict_is_error(self, figure1):
        with pytest.raises(TypeError, match="multiple values"):
            greedy_solve(figure1, 2, k=3, variant="normalized")

    def test_too_many_positionals_is_error(self, figure1):
        with pytest.raises(TypeError):
            greedy_solve(figure1, 2, "normalized", "lazy", None)


class TestExtensionResultNormalization:
    def test_extension_results_match_greedy_shape(self, small_graph, variant):
        """Capacity/quota/revenue results carry the same metadata as
        ``greedy_solve``: populated ``prefix_covers`` (monotone, ending at
        the achieved cover) and real timings."""
        csr = as_csr(small_graph)
        costs = {item: 1.0 for item in csr.items}
        categories = {item: "all" for item in csr.items}
        results = [
            solve(small_graph, variant=variant,
                  constraints={"budget": 4.0, "costs": costs}),
            solve(small_graph, variant=variant, k=4,
                  constraints={"categories": categories,
                               "quotas": {"all": 4}}),
            solve(small_graph, variant=variant, k=4,
                  objective={"revenue": {i: 1.0 for i in csr.items}}),
        ]
        for result in results:
            assert result.prefix_covers is not None
            prefix = list(result.prefix_covers)
            assert len(prefix) == len(result.retained) + 1
            assert prefix[0] == 0.0
            assert prefix == sorted(prefix)
            assert prefix[-1] == pytest.approx(result.cover)
            assert result.wall_time_s > 0
            assert result.gain_evaluations > 0


class TestLazyVsNaiveRegression:
    def test_identical_sets_fewer_evaluations(self, medium_graph, variant):
        naive_trace, lazy_trace = SolverTrace(), SolverTrace()
        naive = greedy_solve(
            medium_graph, k=20, variant=variant, strategy="naive",
            tracer=naive_trace,
        )
        lazy = greedy_solve(
            medium_graph, k=20, variant=variant, strategy="lazy",
            tracer=lazy_trace,
        )
        assert lazy.retained == naive.retained
        assert lazy.cover == pytest.approx(naive.cover)
        naive_evals = naive_trace.metrics.counter(
            "naive.gains_evaluated"
        ).value
        lazy_evals = (
            lazy_trace.metrics.counter("lazy.reevaluations").value
            + lazy_trace.metrics.counter("oracle.batch_evaluations").value
        )
        assert lazy_evals < naive_evals
        assert lazy.gain_evaluations < naive.gain_evaluations
