"""Tests for the streaming (online) adaptation engine."""

import pytest

from repro.adaptation.engine import (
    AdaptationConfig,
    DataAdaptationEngine,
    build_preference_graph,
)
from repro.adaptation.online import OnlineAdaptationEngine
from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.clickstream.models import Clickstream, Session
from repro.core.variants import Variant
from repro.errors import AdaptationError


def graphs_equal(a, b) -> bool:
    if set(a.items()) != set(b.items()):
        return False
    for item in a.items():
        if abs(a.node_weight(item) - b.node_weight(item)) > 1e-12:
            return False
    return sorted(a.edges()) == sorted(b.edges())


@pytest.fixture
def stream() -> Clickstream:
    model = ConsumerModel(
        ShopperConfig(n_items=40, behavior="independent"), seed=20
    )
    return model.generate(3_000, seed=21)


class TestBatchEquivalence:
    @pytest.mark.parametrize("variant", ["independent", "normalized"])
    def test_snapshot_matches_batch(self, stream, variant):
        config = AdaptationConfig(variant=Variant.coerce(variant))
        online = OnlineAdaptationEngine(config)
        online.observe_all(stream)
        batch = DataAdaptationEngine(config).build_graph(stream)
        assert graphs_equal(online.snapshot(), batch)

    def test_pruning_options_respected(self, stream):
        config = AdaptationConfig(min_edge_sessions=3, min_edge_weight=0.05)
        online = OnlineAdaptationEngine(config)
        online.observe_all(stream)
        batch = DataAdaptationEngine(config).build_graph(stream)
        assert graphs_equal(online.snapshot(), batch)

    def test_include_unpurchased(self):
        config = AdaptationConfig(include_unpurchased=True)
        online = OnlineAdaptationEngine(config)
        online.observe(Session("s1", ("alt",), purchase="main"))
        snapshot = online.snapshot()
        assert "alt" in snapshot
        assert snapshot.node_weight("alt") == 0.0


class TestStreamingBehavior:
    def test_incremental_observation(self, stream):
        online = OnlineAdaptationEngine()
        half = len(stream) // 2
        for session in list(stream)[:half]:
            online.observe(session)
        first = online.snapshot()
        for session in list(stream)[half:]:
            online.observe(session)
        second = online.snapshot()
        # More data: same equivalence with the corresponding batches.
        batch_first = build_preference_graph(
            Clickstream(list(stream)[:half]), "independent"
        )
        assert graphs_equal(first, batch_first)
        batch_all = build_preference_graph(stream, "independent")
        assert graphs_equal(second, batch_all)

    def test_observed_sessions_counter(self):
        online = OnlineAdaptationEngine()
        online.observe(Session("s1", (), purchase=None))
        online.observe(Session("s2", (), purchase="a"))
        assert online.observed_sessions == 2

    def test_empty_snapshot_rejected(self):
        online = OnlineAdaptationEngine()
        with pytest.raises(AdaptationError, match="no purchasing"):
            online.snapshot()
        online.observe(Session("s1", ("x",), purchase=None))
        with pytest.raises(AdaptationError):
            online.snapshot()


class TestDecay:
    def test_decay_validation(self):
        with pytest.raises(AdaptationError, match="decay"):
            OnlineAdaptationEngine(decay=0.0)
        with pytest.raises(AdaptationError, match="decay"):
            OnlineAdaptationEngine(decay=1.2)

    def test_decay_fades_old_behavior(self):
        online = OnlineAdaptationEngine(decay=0.5)
        # Period 1: item "old" dominates.
        for i in range(8):
            online.observe(Session(f"a{i}", (), purchase="old"))
        online.observe(Session("b0", (), purchase="new"))
        online.new_period()
        # Period 2: item "new" dominates.
        for i in range(8):
            online.observe(Session(f"c{i}", (), purchase="new"))
        snapshot = online.snapshot()
        # old: 8 * 0.5 = 4; new: 0.5 + 8 = 8.5.
        assert snapshot.node_weight("new") > snapshot.node_weight("old")
        assert snapshot.node_weight("old") == pytest.approx(4 / 12.5)

    def test_no_decay_new_period_noop(self):
        online = OnlineAdaptationEngine(decay=1.0)
        online.observe(Session("s1", (), purchase="a"))
        online.new_period()
        assert online.snapshot().node_weight("a") == 1.0

    def test_decayed_edges_keep_weights_normalized(self):
        config = AdaptationConfig(variant=Variant.NORMALIZED)
        online = OnlineAdaptationEngine(config, decay=0.7)
        online.observe(Session("s1", ("b", "c"), purchase="a"))
        online.observe(Session("s2", (), purchase="b"))
        online.observe(Session("s3", (), purchase="c"))
        online.new_period()
        online.observe(Session("s4", ("b",), purchase="a"))
        graph = online.snapshot()
        graph.validate("normalized")
        # Edge weight = decayed mass / decayed purchases, still <= 1.
        assert graph.out_weight_sum("a") <= 1.0 + 1e-9
