"""Tests for Monte-Carlo replay validation of the cover semantics."""

import pytest

from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.errors import SolverError
from repro.evaluation.replay import (
    ReplayReport,
    replay_match_rate,
    simulate_fulfillment,
)


class TestReplayMatchRate:
    def test_converges_to_cover(self, medium_graph, variant):
        result = greedy_solve(medium_graph, 80, variant)
        report = replay_match_rate(
            medium_graph, result.retained, variant,
            n_requests=150_000, seed=3,
        )
        lo, hi = report.confidence_interval()
        assert lo <= result.cover <= hi

    def test_empty_set_matches_nothing(self, small_graph, variant):
        report = replay_match_rate(
            small_graph, [], variant, n_requests=1000, seed=0
        )
        assert report.match_rate == 0.0

    def test_full_set_matches_everything(self, small_graph, variant):
        report = replay_match_rate(
            small_graph, list(range(14)), variant, n_requests=1000, seed=0
        )
        assert report.match_rate == 1.0

    def test_figure1_pair(self, figure1, variant):
        report = replay_match_rate(
            figure1, ["B", "D"], variant, n_requests=200_000, seed=1
        )
        assert report.match_rate == pytest.approx(0.873, abs=0.01)

    def test_seed_reproducible(self, small_graph, variant):
        a = replay_match_rate(small_graph, [0, 1], variant,
                              n_requests=5000, seed=7)
        b = replay_match_rate(small_graph, [0, 1], variant,
                              n_requests=5000, seed=7)
        assert a.n_matched == b.n_matched

    def test_validation(self, small_graph):
        with pytest.raises(SolverError, match="n_requests"):
            replay_match_rate(small_graph, [0], "independent", n_requests=0)

    def test_report_fields(self, small_graph, variant):
        report = replay_match_rate(small_graph, [0], variant,
                                   n_requests=1000, seed=0)
        assert report.n_requests == 1000
        assert 0 <= report.n_matched <= 1000
        assert report.stderr > 0

    def test_variants_diverge_on_multi_alternatives(self):
        # Same graph, same retained set, different semantics: the
        # normalized match rate must exceed the independent one when an
        # uncovered item has several retained alternatives.
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"v": 0.8, "a": 0.1, "b": 0.1},
            edges=[("v", "a", 0.45), ("v", "b", 0.45)],
        )
        indep = replay_match_rate(g, ["a", "b"], "independent",
                                  n_requests=150_000, seed=2)
        norm = replay_match_rate(g, ["a", "b"], "normalized",
                                 n_requests=150_000, seed=2)
        assert norm.match_rate > indep.match_rate
        assert indep.match_rate == pytest.approx(
            cover(g, ["a", "b"], "independent"), abs=0.01
        )
        assert norm.match_rate == pytest.approx(
            cover(g, ["a", "b"], "normalized"), abs=0.01
        )


class TestSimulateFulfillment:
    def test_matches_true_graph_cover(self, consumer_model_independent):
        model = consumer_model_independent
        graph = model.true_graph()
        result = greedy_solve(graph, 15, "independent")
        report = simulate_fulfillment(
            model, result.retained, n_sessions=120_000, seed=5
        )
        assert report.match_rate == pytest.approx(result.cover, abs=0.01)

    def test_normalized_model(self, consumer_model_normalized):
        model = consumer_model_normalized
        graph = model.true_graph()
        result = greedy_solve(graph, 15, "normalized")
        report = simulate_fulfillment(
            model, result.retained, n_sessions=120_000, seed=6
        )
        assert report.match_rate == pytest.approx(result.cover, abs=0.01)

    def test_retained_indices_accepted(self, consumer_model_independent):
        report = simulate_fulfillment(
            consumer_model_independent, [0, 1, 2], n_sessions=2000, seed=0
        )
        assert report.match_rate > 0

    def test_validation(self, consumer_model_independent):
        with pytest.raises(SolverError):
            simulate_fulfillment(
                consumer_model_independent, [0], n_sessions=0
            )


class TestReplayReport:
    def test_confidence_interval_clamped(self):
        report = ReplayReport(
            n_requests=100, n_matched=100, match_rate=1.0, stderr=0.01
        )
        lo, hi = report.confidence_interval()
        assert hi == 1.0
        assert lo < 1.0
