"""Tests for the repro.experiments series builders."""

import pytest

from repro.experiments import (
    fig4a_rows,
    fig4b_rows,
    fig4c_rows,
    fig4d_rows,
    fig4e_rows,
    fig4f_rows,
    table1_measured_rows,
    table2_rows,
)


class TestTable1:
    def test_rows_and_invariants(self):
        rows = table1_measured_rows(n=8, seeds=(0,))
        assert len(rows) == 8
        for row in rows:
            assert row["greedy_measured"] >= row["greedy_bound"] - 1e-9
            assert row["best_known"] >= row["greedy_bound"] - 1e-12
        assert rows[-1]["greedy_measured"] == pytest.approx(1.0)


class TestTable2:
    def test_rows(self):
        rows = table2_rows(scale=0.0005, seed=0)
        assert [r["dataset"] for r in rows] == ["PE", "PF", "PM", "YC"]


class TestFig4a:
    def test_ratio_column(self):
        rows = fig4a_rows(n_items=10, k_values=(2, 4))
        assert len(rows) == 2
        for row in rows:
            assert 0.9 <= row["ratio"] <= 1.0 + 1e-12
            assert row["greedy_cover"] <= row["optimal_cover"] + 1e-12


class TestFig4b:
    def test_runtime_columns(self):
        rows = fig4b_rows(sizes=(8, 10))
        assert rows[0]["subsets"] == 70  # C(8, 4)
        assert all(row["bf_s"] > 0 for row in rows)


class TestFig4c:
    def test_prebuilt_graph_path(self, medium_graph):
        # Any valid graph works under Independent semantics (the NPC
        # out-sum restriction is the stricter one).
        rows = fig4c_rows(medium_graph, fractions=(0.2, 0.6))
        assert len(rows) == 2
        for row in rows:
            assert row["Greedy"] >= row["Random"] - 1e-9


class TestFig4d:
    def test_small_sweep(self):
        rows = fig4d_rows(sizes=(2_000, 5_000))
        assert [row["n"] for row in rows] == [2_000, 5_000]
        assert all(row["accelerated_s"] >= 0 for row in rows)


class TestFig4e:
    def test_speedup_monotone(self):
        rows = fig4e_rows(n_items=5_000, k=20, workers=(1, 2, 4))
        speedups = [row["speedup"] for row in rows]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)


class TestFig4f:
    def test_threshold_sweep(self, medium_graph):
        rows = fig4f_rows(medium_graph, thresholds=(0.4, 0.7))
        assert rows[0]["Greedy_items"] <= rows[1]["Greedy_items"]
        for row in rows:
            assert row["Greedy_items"] <= row["TopK-W_items"]
