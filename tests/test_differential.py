"""Tests for the differential correctness harness."""

import dataclasses

import numpy as np
import pytest

from repro.core.greedy import greedy_solve
from repro.core.result import SolveResult
from repro.evaluation.differential import (
    DifferentialFailure,
    DifferentialReport,
    _prefix_detail,
    compare_results,
    run_differential,
)


def _result(retained, cover, prefix_covers=None, k=None):
    """Build a minimal SolveResult for comparator unit tests."""
    return SolveResult(
        variant="independent",
        k=len(retained) if k is None else k,
        retained=list(retained),
        retained_indices=np.asarray(retained, dtype=np.int64),
        cover=cover,
        coverage=np.zeros(4),
        item_ids=list(range(8)),
        prefix_covers=(
            None if prefix_covers is None
            else np.asarray(prefix_covers, dtype=float)
        ),
    )


class TestCompareResults:
    def test_identical_results_match(self):
        a = _result([0, 1, 2], 0.9)
        b = _result([0, 1, 2], 0.9)
        assert compare_results(a, b) is None

    def test_cover_mismatch_reported(self):
        a = _result([0, 1, 2], 0.9)
        b = _result([0, 1, 2], 0.9 + 1e-6)
        assert "cover differs" in compare_results(a, b)

    def test_selection_divergence_reported_with_position(self):
        ref = _result([0, 1, 2], 0.9, prefix_covers=[0.0, 0.4, 0.7, 0.9])
        cand = _result([0, 2, 1], 0.9, prefix_covers=[0.0, 0.4, 0.7, 0.9])
        detail = compare_results(ref, cand)
        assert "selection diverges at position 1" in detail

    def test_length_mismatch_reported(self):
        ref = _result([0, 1, 2], 0.9)
        cand = _result([0, 1], 0.7)
        assert "lengths differ" in compare_results(ref, cand)

    def test_tie_tail_divergence_accepted(self):
        # The marginal gain at the divergence point is noise-level, so
        # the argmax is ill-defined; equal covers must be accepted.
        ref = _result(
            [0, 1, 2], 0.9, prefix_covers=[0.0, 0.5, 0.9, 0.9 + 5e-14]
        )
        cand = _result(
            [0, 1, 3], 0.9, prefix_covers=[0.0, 0.5, 0.9, 0.9 + 4e-14]
        )
        assert compare_results(ref, cand) is None

    def test_tie_tail_cover_mismatch_still_fails(self):
        ref = _result(
            [0, 1, 2], 0.9, prefix_covers=[0.0, 0.5, 0.9, 0.9 + 5e-14]
        )
        cand = _result(
            [0, 1, 3], 0.8, prefix_covers=[0.0, 0.5, 0.8, 0.8]
        )
        assert "beyond the tie tail" in compare_results(ref, cand)

    def test_real_solve_manipulation_is_caught(self, small_graph, variant):
        reference = greedy_solve(
            small_graph, k=5, variant=variant, strategy="naive"
        )
        tampered = dataclasses.replace(
            reference, retained=list(reversed(reference.retained))
        )
        assert compare_results(reference, tampered) is not None


class TestPrefixDetail:
    def test_qualifying_prefix_passes(self):
        order = _result([3, 1, 2, 0], 0.95)
        threshold_result = _result([3, 1], 0.8, k=2)
        assert _prefix_detail(order, threshold_result, 0.75) is None

    def test_non_prefix_selection_reported(self):
        order = _result([3, 1, 2, 0], 0.95)
        threshold_result = _result([3, 2], 0.8, k=2)
        detail = _prefix_detail(order, threshold_result, 0.75)
        assert "not a greedy prefix" in detail

    def test_unreached_threshold_reported(self):
        order = _result([3, 1, 2, 0], 0.95)
        threshold_result = _result([3, 1], 0.7, k=2)
        detail = _prefix_detail(order, threshold_result, 0.75)
        assert "not reached" in detail


class TestReport:
    def test_ok_summary(self):
        report = DifferentialReport(
            instances=3, variants=("independent",), checks=12,
            wall_time_s=0.5,
        )
        assert report.ok
        assert "OK" in report.summary()

    def test_failure_summary_lists_details(self):
        report = DifferentialReport(
            instances=1, variants=("independent",), checks=1,
        )
        report.failures.append(
            DifferentialFailure(
                variant="independent", instance="sparse#0",
                combo="strategy=lazy", detail="selection diverges",
            )
        )
        assert not report.ok
        summary = report.summary()
        assert "1 FAILURE(S)" in summary
        assert "strategy=lazy" in summary


class TestRunDifferential:
    def test_smoke_sweep_passes(self):
        lines = []
        report = run_differential(
            instances=3, min_items=12, max_items=36, workers=2, seed=7,
            log=lines.append,
        )
        assert report.ok, report.summary()
        # Per instance: 2 strategies + 2 backends + 2 threshold checks;
        # per backend: 3 reuse checks — all across 2 variants.
        assert report.checks == 2 * (3 * 6 + 2 * 3)
        assert report.wall_time_s > 0
        assert len(lines) == 2 * 3

    def test_degenerate_size_range_is_clamped(self):
        report = run_differential(
            instances=1, min_items=100, max_items=10, workers=2, seed=3,
            variants=("independent",), backends=("pipe",),
        )
        assert report.ok, report.summary()

    def test_single_failure_fails_report(self, monkeypatch):
        import repro.evaluation.differential as differential

        real = differential.compare_results

        def sabotage(reference, candidate, **kwargs):
            detail = real(reference, candidate, **kwargs)
            if detail is None and candidate.strategy == "greedy-lazy":
                return "injected divergence"
            return detail

        monkeypatch.setattr(differential, "compare_results", sabotage)
        report = run_differential(
            instances=1, min_items=12, max_items=24, workers=2, seed=1,
            variants=("independent",), backends=("pipe",),
        )
        assert not report.ok
        assert any(
            "injected divergence" in failure.detail
            for failure in report.failures
        )


@pytest.mark.parametrize("backend", ["pipe", "shm"])
def test_reuse_checks_cover_both_backends(backend):
    report = run_differential(
        instances=1, min_items=16, max_items=32, workers=2, seed=11,
        variants=("independent",), backends=(backend,),
    )
    assert report.ok, report.summary()
