"""End-to-end smoke test: ``repro serve --metrics-port`` under chaos.

Launches the CLI in a subprocess with an ambient ``REPRO_FAULTS``
refresh-crash spec, scrapes the sidecar's ``/metrics`` and ``/readyz``
endpoints while the process lingers, and asserts the degradation is
visible from outside: a non-fresh tier gauge, breaker state, and a
503 readiness verdict.  This mirrors the CI ``obs-smoke`` job.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.ambient_chaos

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_serve(extra_env, *cli_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.update(extra_env)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--items", "50", "--requests", "150", "--seed", "4",
            "--metrics-port", "0", "--linger-s", "8", *cli_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO,
    )


def _read_exporter_url(process, deadline_s=30.0):
    """The stderr announcement line carries the ephemeral port."""
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        line = process.stderr.readline()
        if not line:
            break
        match = re.search(r"metrics: (http://[^/\s]+)/metrics", line)
        if match:
            return match.group(1)
    raise AssertionError("exporter URL never announced on stderr")


def _scrape(url, deadline_s=10.0):
    start = time.monotonic()
    last = None
    while time.monotonic() - start < deadline_s:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")
        except OSError as exc:
            last = exc
            time.sleep(0.2)
    raise AssertionError(f"could not scrape {url}: {last}")


def _poll_metrics(url, predicate, deadline_s=20.0):
    """Scrape /metrics until ``predicate(text)`` holds (workload races
    the first scrape, so the expected state may take a moment)."""
    start = time.monotonic()
    text = ""
    while time.monotonic() - start < deadline_s:
        status, text = _scrape(url + "/metrics")
        if status == 200 and predicate(text):
            return text
        time.sleep(0.3)
    raise AssertionError(f"metrics never reached expected state:\n{text}")


class TestObsSmoke:
    def test_healthy_serve_is_ready_and_exports_slo_metrics(self):
        process = _spawn_serve({"REPRO_FAULTS": ""})
        try:
            url = _read_exporter_url(process)
            text = _poll_metrics(url, lambda t: re.search(
                r'repro_serving_answer_latency_seconds_bucket'
                r'\{le="\+Inf",tier="fresh"\} \d+', t,
            ))
            assert "# TYPE repro_serving_tier gauge" in text
            assert "repro_serving_breaker_state 0" in text
            status, body = _scrape(url + "/readyz")
            assert status == 200
            assert json.loads(body)["status"] == "ready"
            status, _ = _scrape(url + "/healthz")
            assert status == 200
        finally:
            stdout, _ = _drain(process)
        assert process.returncode == 0, stdout

    def test_chaos_degradation_is_visible_from_outside(self):
        process = _spawn_serve(
            {"REPRO_FAULTS": "refresh_crash=1.0:seed=9"},
            "--retries", "2",
        )
        try:
            url = _read_exporter_url(process)
            text = _poll_metrics(url, lambda t: (
                (match := re.search(r"^repro_serving_tier (\d+)", t, re.M))
                is not None and int(match.group(1)) >= 2  # static or shed
            ))
            assert re.search(
                r"^repro_serving_static_builds_total [1-9]", text, re.M
            )
            assert re.search(
                r"^repro_serving_retries_total [1-9]", text, re.M
            )
            status, body = _scrape(url + "/readyz")
            assert status == 503
            assert json.loads(body)["status"] == "unready"
        finally:
            stdout, _ = _drain(process)
        # static tier -> degraded exit code
        assert process.returncode == 3, stdout


def _drain(process, deadline_s=60.0):
    try:
        return process.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        process.kill()
        return process.communicate()
