"""Tests for the greedy solver (Algorithm 1) and its three strategies."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_solve
from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import STRATEGIES, greedy_order, greedy_solve
from repro.errors import SolverError
from repro.reductions.bounds import greedy_ratio_bound
from repro.workloads.graphs import small_dense_graph

REAL_STRATEGIES = [s for s in STRATEGIES if s != "auto"]


class TestBasics:
    def test_figure1_selection_order(self, figure1, variant):
        result = greedy_solve(figure1, 2, variant)
        # Example 3.2: B first (gain 0.66), then D (gain 0.213).
        assert result.retained == ["B", "D"]
        assert result.cover == pytest.approx(0.873)
        assert result.prefix_covers[1] == pytest.approx(0.66)

    def test_k_zero(self, figure1, variant):
        result = greedy_solve(figure1, 0, variant)
        assert result.retained == []
        assert result.cover == 0.0

    def test_k_equals_n_covers_all(self, figure1, variant):
        result = greedy_solve(figure1, 5, variant)
        assert result.cover == pytest.approx(1.0)
        assert sorted(result.retained) == ["A", "B", "C", "D", "E"]

    @pytest.mark.parametrize("bad_k", [-1, 6])
    def test_k_out_of_range(self, figure1, bad_k):
        with pytest.raises(SolverError, match="out of range"):
            greedy_solve(figure1, bad_k, "independent")

    def test_k_must_be_integer(self, figure1):
        with pytest.raises(SolverError, match="integer"):
            greedy_solve(figure1, 2.5, "independent")

    def test_unknown_strategy(self, figure1):
        with pytest.raises(SolverError, match="unknown strategy"):
            greedy_solve(figure1, 2, "independent", strategy="magic")

    def test_numpy_integer_k_accepted(self, figure1):
        result = greedy_solve(figure1, np.int64(2), "independent")
        assert len(result.retained) == 2


class TestStrategiesAgree:
    @pytest.mark.parametrize("strategy", REAL_STRATEGIES)
    def test_cover_equals_exact_recomputation(
        self, medium_graph, variant, strategy
    ):
        result = greedy_solve(medium_graph, 40, variant, strategy=strategy)
        exact = cover(medium_graph, result.retained, variant)
        assert result.cover == pytest.approx(exact, abs=1e-9)

    def test_same_solution_across_strategies(self, medium_graph, variant):
        results = {
            s: greedy_solve(medium_graph, 30, variant, strategy=s)
            for s in REAL_STRATEGIES
        }
        covers = {s: r.cover for s, r in results.items()}
        baseline = covers["naive"]
        for s, c in covers.items():
            assert c == pytest.approx(baseline, abs=1e-9), s
        # Continuous random weights: ties have measure zero, so the
        # actual selections agree too.
        sets = {s: r.retained for s, r in results.items()}
        assert sets["lazy"] == sets["naive"]
        assert sets["accelerated"] == sets["naive"]

    def test_lazy_needs_fewer_evaluations(self, medium_graph, variant):
        naive = greedy_solve(medium_graph, 30, variant, strategy="naive")
        lazy = greedy_solve(medium_graph, 30, variant, strategy="lazy")
        assert lazy.gain_evaluations < naive.gain_evaluations

    def test_auto_is_accelerated(self, figure1):
        result = greedy_solve(figure1, 2, "independent", strategy="auto")
        assert result.strategy == "greedy-accelerated"


class TestPrefixProperty:
    """Section 3.2: an ordered size-k solution solves every k' < k."""

    @pytest.mark.parametrize("strategy", REAL_STRATEGIES)
    def test_prefix_matches_smaller_k(self, small_graph, variant, strategy):
        big = greedy_solve(small_graph, 10, variant, strategy=strategy)
        for k_prime in (1, 3, 7):
            small = greedy_solve(
                small_graph, k_prime, variant, strategy=strategy
            )
            assert big.retained[:k_prime] == small.retained
            assert big.prefix_covers[k_prime] == pytest.approx(
                small.cover, abs=1e-9
            )

    def test_prefix_covers_monotone(self, medium_graph, variant):
        result = greedy_solve(medium_graph, 50, variant)
        diffs = np.diff(result.prefix_covers)
        assert np.all(diffs >= -1e-12)

    def test_greedy_order_covers_everything(self, small_graph, variant):
        result = greedy_order(small_graph, variant)
        assert result.k == as_csr(small_graph).n_items
        assert result.cover == pytest.approx(1.0)


class TestApproximationGuarantee:
    """Greedy cover >= worst-case bound * OPT on brute-forceable instances."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_independent_bound(self, seed, k):
        graph = small_dense_graph(10, variant="independent", seed=seed)
        optimal = brute_force_solve(graph, k, "independent").cover
        achieved = greedy_solve(graph, k, "independent").cover
        assert achieved >= (1 - 1 / np.e) * optimal - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_normalized_bound(self, seed, k):
        graph = small_dense_graph(10, variant="normalized", seed=seed)
        optimal = brute_force_solve(graph, k, "normalized").cover
        achieved = greedy_solve(graph, k, "normalized").cover
        bound = greedy_ratio_bound(k, 10)
        assert achieved >= bound * optimal - 1e-9


class TestCallback:
    def test_callback_sees_every_iteration(self, small_graph, variant):
        seen = []

        def record(iteration, node, gain, running_cover):
            seen.append((iteration, node, gain, running_cover))

        result = greedy_solve(
            small_graph, 5, variant, strategy="naive", callback=record
        )
        assert [i for i, *_ in seen] == list(range(5))
        assert [n for _, n, *_ in seen] == list(result.retained_indices)
        # Gains reported must sum to the final cover.
        assert sum(g for *_, g, _ in seen) == pytest.approx(
            result.cover, abs=1e-9
        )
