"""Cross-module integration tests: the full story, end to end.

These tie the substrates together: consumer simulation -> clickstream ->
Data Adaptation Engine -> preference graph -> solver -> Monte-Carlo /
behavioral validation, plus convergence of the estimated graph to the
generator's ground truth.
"""

import pytest

from repro import (
    InventoryReducer,
    brute_force_solve,
    cover,
    greedy_solve,
    top_k_weight_solve,
)
from repro.adaptation import build_preference_graph, recommend_variant
from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.clickstream.io import read_jsonl, write_jsonl
from repro.evaluation.replay import simulate_fulfillment
from repro.workloads.datasets import build_dataset


class TestAdaptationConvergence:
    """The estimated preference graph converges to the ground truth."""

    @pytest.mark.parametrize("behavior", ["independent", "normalized"])
    def test_node_weights_converge(self, behavior):
        model = ConsumerModel(
            ShopperConfig(n_items=40, behavior=behavior), seed=1
        )
        stream = model.generate(40_000, seed=2)
        graph = build_preference_graph(stream, behavior)
        truth = model.true_graph()
        for item in graph.items():
            assert graph.node_weight(item) == pytest.approx(
                truth.node_weight(item), abs=0.01
            )

    def test_independent_edge_weights_converge(self):
        model = ConsumerModel(
            ShopperConfig(
                n_items=20, behavior="independent", cluster_size=5,
                self_click_rate=0.0, zipf_exponent=0.5,
            ),
            seed=3,
        )
        stream = model.generate(60_000, seed=4)
        graph = build_preference_graph(stream, "independent")
        truth = model.true_graph()
        checked = 0
        for source, target, weight in truth.edges():
            if graph.has_edge(source, target):
                assert graph.edge_weight(source, target) == pytest.approx(
                    weight, abs=0.08
                )
                checked += 1
        assert checked > 10

    def test_normalized_edge_weights_converge(self):
        model = ConsumerModel(
            ShopperConfig(
                n_items=20, behavior="normalized", cluster_size=5,
                self_click_rate=0.0, zipf_exponent=0.5,
            ),
            seed=5,
        )
        stream = model.generate(60_000, seed=6)
        graph = build_preference_graph(stream, "normalized")
        truth = model.true_graph()
        checked = 0
        for source, target, weight in truth.edges():
            if graph.has_edge(source, target) and weight > 0.05:
                assert graph.edge_weight(source, target) == pytest.approx(
                    weight, abs=0.08
                )
                checked += 1
        assert checked > 5


class TestEndToEndQuality:
    """Solving the *estimated* graph yields near-truth-level fulfillment."""

    @pytest.mark.parametrize("behavior", ["independent", "normalized"])
    def test_estimated_solution_performs_on_true_population(self, behavior):
        model = ConsumerModel(
            ShopperConfig(n_items=60, behavior=behavior), seed=7
        )
        stream = model.generate(30_000, seed=8)
        reducer = InventoryReducer(k=15, variant=behavior)
        report = reducer.run(stream)

        realized = simulate_fulfillment(
            model, report.retained, n_sessions=60_000, seed=9
        )
        # Oracle: greedy on the ground-truth graph.
        truth_result = greedy_solve(model.true_graph(), 15, behavior)
        oracle = simulate_fulfillment(
            model, truth_result.retained, n_sessions=60_000, seed=9
        )
        assert realized.match_rate >= oracle.match_rate - 0.03

    def test_greedy_beats_top_sellers_in_realized_sales(self):
        model = ConsumerModel(
            ShopperConfig(n_items=60, behavior="independent",
                          zipf_exponent=0.8),
            seed=10,
        )
        stream = model.generate(30_000, seed=11)
        graph = build_preference_graph(stream, "independent")
        greedy = greedy_solve(graph, 12, "independent")
        naive = top_k_weight_solve(graph, 12, "independent")
        greedy_sales = simulate_fulfillment(
            model, greedy.retained, n_sessions=80_000, seed=12
        )
        naive_sales = simulate_fulfillment(
            model, naive.retained, n_sessions=80_000, seed=12
        )
        assert greedy_sales.match_rate >= naive_sales.match_rate


class TestFileRoundtripPipeline:
    def test_jsonl_through_reducer(self, tmp_path):
        stream, _model = build_dataset("PE", scale=0.0003, seed=0)
        path = tmp_path / "pe.jsonl"
        write_jsonl(stream, path)
        loaded = read_jsonl(path)
        report = InventoryReducer(k=30).run(loaded)
        assert len(report.retained) == 30
        direct = InventoryReducer(k=30).run(stream)
        assert report.retained == direct.retained


class TestVariantSelectionEndToEnd:
    def test_pm_style_data_selects_normalized(self):
        stream, _ = build_dataset("PM", scale=0.0005, seed=1)
        rec = recommend_variant(stream)
        assert rec.variant.value == "normalized"

    def test_pe_style_data_selects_independent(self):
        stream, _ = build_dataset("PE", scale=0.0005, seed=1)
        rec = recommend_variant(stream)
        assert rec.variant.value == "independent"


class TestGreedyNearOptimalInPractice:
    """The Figure 4a observation: greedy is near-optimal on real-ish data."""

    @pytest.mark.parametrize("behavior", ["independent", "normalized"])
    def test_ratio_above_098(self, behavior):
        model = ConsumerModel(
            ShopperConfig(n_items=12, behavior=behavior, cluster_size=4),
            seed=13,
        )
        stream = model.generate(20_000, seed=14)
        graph = build_preference_graph(stream, behavior)
        n = graph.n_items
        for k in (2, 4, n // 2):
            greedy = greedy_solve(graph, k, behavior)
            optimal = brute_force_solve(graph, k, behavior)
            assert greedy.cover >= 0.98 * optimal.cover
