"""Tests for the end-to-end InventoryReducer (Figure 2 architecture)."""

import pytest

from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.core.variants import Variant
from repro.errors import SolverError
from repro.pipeline import InventoryReducer


@pytest.fixture
def independent_stream():
    model = ConsumerModel(
        ShopperConfig(n_items=80, behavior="independent"), seed=10
    )
    return model.generate(12_000, seed=11)


@pytest.fixture
def normalized_stream():
    model = ConsumerModel(
        ShopperConfig(n_items=80, behavior="normalized"), seed=12
    )
    return model.generate(12_000, seed=13)


class TestConstruction:
    def test_requires_exactly_one_objective(self):
        with pytest.raises(SolverError, match="exactly one"):
            InventoryReducer()
        with pytest.raises(SolverError, match="exactly one"):
            InventoryReducer(k=5, threshold=0.5)

    def test_fixed_variant(self):
        reducer = InventoryReducer(k=5, variant="normalized")
        assert reducer.variant is Variant.NORMALIZED
        assert not reducer.auto_variant


class TestRun:
    def test_auto_variant_independent(self, independent_stream):
        reducer = InventoryReducer(k=20)
        report = reducer.run(independent_stream)
        assert report.variant is Variant.INDEPENDENT
        assert report.recommendation is not None
        assert len(report.retained) == 20
        assert 0 < report.cover <= 1

    def test_auto_variant_normalized(self, normalized_stream):
        reducer = InventoryReducer(k=20)
        report = reducer.run(normalized_stream)
        assert report.variant is Variant.NORMALIZED
        assert report.recommendation.fits

    def test_threshold_mode(self, independent_stream):
        reducer = InventoryReducer(threshold=0.7, variant="independent")
        report = reducer.run(independent_stream)
        assert report.cover >= 0.7 - 1e-9
        # It should take far fewer items than the full catalog.
        assert len(report.retained) < report.graph.n_items

    def test_k_clamped_to_catalog(self, independent_stream):
        reducer = InventoryReducer(k=10_000, variant="independent")
        with pytest.warns(RuntimeWarning, match="exceeds the catalog"):
            report = reducer.run(independent_stream)
        assert len(report.retained) == report.graph.n_items
        assert report.cover == pytest.approx(1.0)

    def test_k_clamp_recorded_in_report(self, independent_stream):
        reducer = InventoryReducer(k=10_000, variant="independent")
        with pytest.warns(RuntimeWarning):
            report = reducer.run(independent_stream)
        assert report.k_clamped_from == 10_000
        assert "10000" in report.summary()
        assert "clamped" in report.summary()

    def test_unclamped_k_not_flagged(self, independent_stream):
        reducer = InventoryReducer(k=10, variant="independent")
        report = reducer.run(independent_stream)
        assert report.k_clamped_from is None
        assert "clamped" not in report.summary()

    def test_fixed_variant_skips_recommendation(self, independent_stream):
        reducer = InventoryReducer(k=10, variant="independent")
        report = reducer.run(independent_stream)
        assert report.recommendation is None


class TestRunGraph:
    def test_solves_prebuilt_graph(self, figure1):
        reducer = InventoryReducer(k=2, variant="normalized")
        report = reducer.run_graph(figure1, "normalized")
        assert report.retained == ["B", "D"]
        assert report.cover == pytest.approx(0.873)

    def test_invalid_graph_rejected(self):
        from repro.core.graph import PreferenceGraph

        bad = PreferenceGraph.from_weights({"a": 0.4, "b": 0.4})
        reducer = InventoryReducer(k=1, variant="independent")
        from repro.errors import GraphValidationError

        with pytest.raises(GraphValidationError):
            reducer.run_graph(bad, "independent")

    def test_invalid_variant_rejected(self, figure1):
        reducer = InventoryReducer(k=2, variant="normalized")
        with pytest.raises(ValueError, match="unknown Preference Cover"):
            reducer.run_graph(figure1, "bogus")

    def test_threshold_with_constraints_rejected(self):
        with pytest.raises(SolverError, match="fixed-k"):
            InventoryReducer(threshold=0.5, must_retain=["a"])
        with pytest.raises(SolverError, match="fixed-k"):
            InventoryReducer(threshold=0.5, exclude=["b"])

    def test_run_graph_clamp_and_interrupt_surface(self, figure1):
        from repro.resilience import RunGuard

        reducer = InventoryReducer(
            k=100,
            variant="normalized",
            guard=RunGuard(deadline_s=0, on_trigger="partial"),
        )
        with pytest.warns(RuntimeWarning, match="exceeds the catalog"):
            report = reducer.run_graph(figure1, "normalized")
        assert report.k_clamped_from == 100
        assert report.result.interrupted
        assert len(report.retained) == 1  # one round, then the guard trips
        assert "interrupted" in report.summary()
        assert "deadline" in report.summary()


class TestReport:
    def test_item_table(self, figure1):
        reducer = InventoryReducer(k=2, variant="normalized")
        report = reducer.run_graph(figure1, "normalized")
        rows = report.item_table()
        assert len(rows) == 5
        # Sorted by request probability descending: A first.
        assert rows[0].item == "A"
        by_item = {row.item: row for row in rows}
        assert by_item["B"].retained and by_item["D"].retained
        assert by_item["A"].coverage == pytest.approx(2 / 3)
        assert by_item["C"].coverage == pytest.approx(1.0)
        assert not by_item["C"].retained

    def test_summary_mentions_key_facts(self, independent_stream):
        reducer = InventoryReducer(k=15)
        report = reducer.run(independent_stream)
        text = report.summary()
        assert "independent" in text
        assert "15" in text
        assert "variant selection" in text

    def test_summary_without_recommendation(self, figure1):
        reducer = InventoryReducer(k=2, variant="normalized")
        report = reducer.run_graph(figure1, "normalized")
        assert "variant selection" not in report.summary()


class TestPipelineQuality:
    def test_pipeline_beats_top_sellers(self, independent_stream):
        # The headline claim, end to end: greedy over the adapted graph
        # covers more than the naive top-selling baseline.
        from repro.core.baselines import top_k_weight_solve

        reducer = InventoryReducer(k=15, variant="independent")
        report = reducer.run(independent_stream)
        baseline = top_k_weight_solve(report.graph, 15, "independent")
        assert report.cover >= baseline.cover
