"""Tests for the generic submodular helpers and the cover functions'
set-function properties (paper Section 2.3 / Lemma 2.6)."""

import pytest

from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.core.submodular import (
    ONE_MINUS_INV_E,
    check_monotone,
    check_submodular,
    greedy_maximize,
)


class TestPropertyCheckers:
    def test_modular_function_passes_both(self):
        weights = {"a": 1.0, "b": 2.0, "c": 3.0}

        def f(s):
            return sum(weights[x] for x in s)

        assert check_monotone(f, list(weights), trials=100)
        assert check_submodular(f, list(weights), trials=100)

    def test_supermodular_function_fails_submodularity(self):
        # f(S) = |S|^2 is supermodular (increasing marginal gains).
        universe = list(range(6))

        def f(s):
            return len(s) ** 2

        assert check_monotone(f, universe, trials=100)
        assert not check_submodular(f, universe, trials=200)

    def test_decreasing_function_fails_monotonicity(self):
        universe = list(range(6))

        def f(s):
            return -len(s)

        assert not check_monotone(f, universe, trials=100)

    def test_empty_universe_trivially_passes(self):
        assert check_monotone(lambda s: 0.0, [], trials=10)
        assert check_submodular(lambda s: 0.0, [], trials=10)


class TestCoverFunctionIsSubmodular:
    """The theoretical core: both variants' C(.) are monotone submodular."""

    def test_cover_monotone(self, small_graph, variant):
        csr = as_csr(small_graph)
        universe = list(range(csr.n_items))

        def f(s):
            return cover(csr, sorted(s), variant)

        assert check_monotone(f, universe, trials=60, seed=1)

    def test_cover_submodular(self, small_graph, variant):
        csr = as_csr(small_graph)
        universe = list(range(csr.n_items))

        def f(s):
            return cover(csr, sorted(s), variant)

        assert check_submodular(f, universe, trials=60, seed=1)


class TestGenericGreedy:
    def test_matches_specialized_greedy(self, small_graph, variant):
        csr = as_csr(small_graph)
        universe = list(range(csr.n_items))

        def f(s):
            return cover(csr, sorted(s), variant)

        generic_selection, generic_value = greedy_maximize(f, universe, 5)
        specialized = greedy_solve(csr, 5, variant)
        assert generic_value == pytest.approx(specialized.cover, abs=1e-9)
        assert generic_selection == list(specialized.retained_indices)

    def test_stops_when_universe_exhausted(self):
        selection, value = greedy_maximize(lambda s: len(s), ["a", "b"], 5)
        assert sorted(selection) == ["a", "b"]
        assert value == 2

    def test_constant(self):
        assert ONE_MINUS_INV_E == pytest.approx(1 - 1 / 2.718281828459045)
