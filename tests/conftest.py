"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.core.csr import CSRGraph
from repro.core.graph import PreferenceGraph
from repro.examples_data import figure1_graph, figure3_graph
from repro.workloads.graphs import random_preference_graph, small_dense_graph

VARIANTS = ("independent", "normalized")


@pytest.fixture
def figure1() -> PreferenceGraph:
    """The paper's Figure 1 five-item graph."""
    return figure1_graph()


@pytest.fixture
def figure3() -> PreferenceGraph:
    """The paper's Figure 3b iPhone graph."""
    return figure3_graph()


@pytest.fixture(params=VARIANTS)
def variant(request) -> str:
    """Parametrize a test over both problem variants."""
    return request.param


@pytest.fixture
def small_graph(variant) -> CSRGraph:
    """A dense 14-node instance valid for the current variant."""
    return small_dense_graph(14, variant=variant, seed=42)


@pytest.fixture
def medium_graph(variant) -> CSRGraph:
    """A sparse 500-node instance valid for the current variant."""
    return random_preference_graph(500, variant=variant, seed=7)


@pytest.fixture
def line_graph() -> PreferenceGraph:
    """A -> B -> C chain with distinct weights; easy to reason about."""
    return PreferenceGraph.from_weights(
        {"A": 0.5, "B": 0.3, "C": 0.2},
        edges=[("A", "B", 0.5), ("B", "C", 0.4)],
    )


@pytest.fixture
def consumer_model_independent() -> ConsumerModel:
    """A small independent-behavior shopper population."""
    return ConsumerModel(
        ShopperConfig(n_items=60, behavior="independent", cluster_size=6),
        seed=123,
    )


@pytest.fixture
def consumer_model_normalized() -> ConsumerModel:
    """A small normalized-behavior shopper population."""
    return ConsumerModel(
        ShopperConfig(n_items=60, behavior="normalized", cluster_size=6),
        seed=321,
    )
