"""Chaos suite: the runtime under injected faults must stay correct.

Every test here asserts *equality* with an un-faulted run (the fault
sequences are seeded and deterministic), plus the zero-leak guarantees:
no surviving worker processes, no leaked ``/dev/shm`` segments, no
stray temp checkpoint files.
"""

import multiprocessing as mp
import os
from pathlib import Path

import pytest

from repro.core.greedy import greedy_solve
from repro.core.parallel import ParallelGainEvaluator
from repro.errors import ReproError
from repro.resilience import Checkpointer, FaultInjector, inject_faults
from repro.resilience.faults import InjectedCrash
from repro.workloads.graphs import random_preference_graph

_SHM_DIR = Path("/dev/shm")


def _shm_entries():
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux hosts
        return set()
    return {entry.name for entry in _SHM_DIR.iterdir()}


@pytest.fixture
def graph():
    return random_preference_graph(48, variant="independent", seed=21)


@pytest.fixture(autouse=True)
def _suppress_ambient(request):
    """Shield deterministic chaos tests from ambient ``REPRO_FAULTS``.

    CI's chaos-smoke job exports an ambient spec for the whole run;
    every test here builds its own explicit injector (which shadows the
    ambient one anyway), so the suppression only protects the clean
    reference solves.  Tests marked ``ambient_chaos`` opt out — they
    exist to observe the ambient injector itself.
    """
    if request.node.get_closest_marker("ambient_chaos"):
        yield
        return
    with inject_faults(None):
        yield


@pytest.fixture
def leak_check():
    """Assert the test leaked no children and no shared-memory segments."""
    before = _shm_entries()
    yield
    assert mp.active_children() == []
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {leaked}"


@pytest.mark.ambient_chaos
class TestEnvActivation:
    def test_env_kill_round_reaches_solver(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=3")
        with pytest.raises(InjectedCrash) as excinfo:
            greedy_solve(graph, k=10, variant="independent")
        assert excinfo.value.round_no == 3

    def test_env_spec_errors_are_loud(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill_round=soon")
        with pytest.raises(ReproError, match="REPRO_FAULTS"):
            greedy_solve(graph, k=10, variant="independent")

    def test_env_checkpoint_chaos(self, graph, tmp_path, monkeypatch):
        # Every write fails, yet the solve itself must succeed.
        monkeypatch.setenv("REPRO_FAULTS", "checkpoint_write=1.0")
        ckpt = Checkpointer(tmp_path, every_rounds=1)
        result = greedy_solve(
            graph, k=8, variant="independent", checkpoint=ckpt
        )
        assert len(result.retained) == 8
        assert ckpt.write_failures > 0
        assert list(tmp_path.glob("ckpt-*")) == []
        assert list(tmp_path.glob(".tmp-*")) == []


class TestWorkerChaos:
    @pytest.mark.parametrize("backend", ["pipe", "shm"])
    def test_crashed_workers_do_not_change_results(
        self, graph, backend, leak_check
    ):
        serial = greedy_solve(
            graph, k=12, variant="independent", strategy="naive"
        )
        faults = FaultInjector(seed=3, worker_crash=0.4, recv_delay=0.001)
        with inject_faults(faults):
            with ParallelGainEvaluator(
                graph, "independent", n_workers=2, backend=backend,
                timeout_s=30.0, max_restarts=50,
            ) as pool:
                chaotic = greedy_solve(
                    graph, k=12, variant="independent", strategy="naive",
                    parallel=pool,
                )
                restarts = pool.restarts
        assert faults.fired.get("worker_crash", 0) > 0
        assert restarts >= faults.fired["worker_crash"]
        assert chaotic.retained == serial.retained
        assert chaotic.cover == serial.cover

    def test_restart_budget_exhaustion_is_clean(self, graph, leak_check):
        from repro.errors import SolverError

        faults = FaultInjector(seed=1, worker_crash=1.0)
        with inject_faults(faults):
            with pytest.raises(SolverError, match="restart budget"):
                with ParallelGainEvaluator(
                    graph, "independent", n_workers=2, backend="pipe",
                    timeout_s=10.0, max_restarts=1,
                ) as pool:
                    greedy_solve(
                        graph, k=12, variant="independent",
                        strategy="naive", parallel=pool,
                    )


class TestCrashResumeChaos:
    def test_kill_with_failing_checkpoints_still_resumes(
        self, graph, tmp_path
    ):
        # Flaky checkpoint writes AND a mid-solve kill: resume falls
        # back to whatever snapshot survived and still matches clean.
        clean = greedy_solve(graph, k=14, variant="independent")
        with pytest.raises(InjectedCrash):
            with inject_faults(
                FaultInjector(
                    seed=11, kill_round=9, checkpoint_write=0.5
                )
            ):
                greedy_solve(
                    graph, k=14, variant="independent",
                    checkpoint=Checkpointer(tmp_path, every_rounds=1),
                )
        assert list(tmp_path.glob(".tmp-*")) == []
        resumed = greedy_solve(
            graph, k=14, variant="independent",
            checkpoint=Checkpointer(tmp_path),
        )
        assert resumed.retained == clean.retained
        assert resumed.cover == clean.cover

    def test_repeated_kills_make_progress(self, graph, tmp_path):
        # A solve that dies every 3 rounds still converges through
        # resume — the crash-restart loop a batch scheduler produces.
        clean = greedy_solve(graph, k=12, variant="independent")
        attempts = 0
        while True:
            attempts += 1
            assert attempts < 20, "crash-resume loop made no progress"
            try:
                with inject_faults(FaultInjector(kill_round=3)):
                    result = greedy_solve(
                        graph, k=12, variant="independent",
                        checkpoint=Checkpointer(
                            tmp_path, every_rounds=1
                        ),
                    )
                break
            except InjectedCrash:
                continue
        # kill_round=3 counts rounds *executed this run*; each attempt
        # replays the checkpoint prefix then adds up to 3 fresh rounds.
        assert attempts >= 4
        assert result.retained == clean.retained
        assert result.cover == clean.cover


class TestIngestionChaos:
    def test_corrupted_lines_are_quarantined(self, tmp_path):
        from repro.clickstream.io import read_jsonl

        path = tmp_path / "stream.jsonl"
        path.write_text(
            "".join(
                '{"session_id": "s%d", "clicks": ["a"]}\n' % i
                for i in range(40)
            )
        )
        faults = FaultInjector(seed=13, malformed_record=0.3)
        with inject_faults(faults):
            loaded = read_jsonl(
                path, on_error="quarantine", error_budget=None
            )
        corrupted = faults.fired.get("malformed_record", 0)
        assert corrupted > 0
        assert loaded.quarantine.quarantined == corrupted
        assert loaded.n_sessions == 40 - corrupted

    def test_clean_read_without_faults(self, tmp_path):
        from repro.clickstream.io import read_jsonl

        path = tmp_path / "stream.jsonl"
        path.write_text('{"session_id": "s", "clicks": ["a"]}\n')
        loaded = read_jsonl(path, on_error="quarantine")
        assert loaded.quarantine.quarantined == 0


class TestFullChaosLeakFreedom:
    def test_chaos_sweep_leaves_nothing_behind(self, graph, tmp_path, leak_check):
        # The combined scenario from the acceptance criteria: worker
        # crashes + kill + flaky checkpoints, across both pool
        # protocols, then a final leak sweep.
        clean = greedy_solve(
            graph, k=10, variant="independent", strategy="naive"
        )
        for backend in ("pipe", "shm"):
            ckpt_dir = tmp_path / backend
            with pytest.raises(InjectedCrash):
                with inject_faults(
                    FaultInjector(
                        seed=7, kill_round=6, worker_crash=0.3,
                        checkpoint_write=0.3,
                    )
                ):
                    with ParallelGainEvaluator(
                        graph, "independent", n_workers=2,
                        backend=backend, timeout_s=30.0,
                        max_restarts=50,
                    ) as pool:
                        greedy_solve(
                            graph, k=10, variant="independent",
                            strategy="naive", parallel=pool,
                            checkpoint=Checkpointer(
                                ckpt_dir, every_rounds=1
                            ),
                        )
            resumed = greedy_solve(
                graph, k=10, variant="independent", strategy="naive",
                checkpoint=Checkpointer(ckpt_dir),
            )
            assert resumed.retained == clean.retained
            assert list(ckpt_dir.glob(".tmp-*")) == []


@pytest.mark.ambient_chaos
@pytest.mark.skipif(
    os.environ.get("REPRO_FAULTS", "") == "",
    reason="ambient chaos smoke; enable by exporting REPRO_FAULTS",
)
class TestAmbientChaosSmoke:
    """CI's chaos-smoke job runs the suite with REPRO_FAULTS exported.

    This class is the only part that *requires* the ambient spec: it
    proves a solve under whatever ambient chaos is configured either
    completes with a correct prefix or dies with the injected error —
    never a wrong answer, never a leak.
    """

    def test_ambient_faults_respected(self, graph, leak_check):
        with inject_faults(None):  # clean reference, chaos suppressed
            clean = greedy_solve(graph, k=10, variant="independent")
        try:
            chaotic = greedy_solve(graph, k=10, variant="independent")
        except InjectedCrash:
            return
        size = len(chaotic.retained)
        assert chaotic.retained == clean.retained[:size]
