"""Fuzz tests: arbitrary session structures never break the adapters.

Hypothesis generates unconstrained session shapes (any mix of clicks,
repeated clicks, self-clicks, browse-only sessions) and asserts that the
batch engine, the online engine and the variant selector either produce
a *valid* preference graph or raise the documented
:class:`~repro.errors.AdaptationError` — never anything else.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adaptation.engine import AdaptationConfig, DataAdaptationEngine
from repro.adaptation.online import OnlineAdaptationEngine
from repro.adaptation.variant_selection import recommend_variant
from repro.clickstream.models import Clickstream, Session
from repro.core.variants import Variant
from repro.errors import AdaptationError

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ITEM_IDS = st.sampled_from([f"item{i}" for i in range(8)])


@st.composite
def sessions(draw):
    clicks = draw(st.lists(ITEM_IDS, min_size=0, max_size=6))
    purchase = draw(st.one_of(st.none(), ITEM_IDS))
    return Session(
        session_id=draw(st.uuids()).hex,
        clicks=tuple(clicks),
        purchase=purchase,
    )


@st.composite
def clickstreams(draw):
    return Clickstream(
        draw(st.lists(sessions(), min_size=0, max_size=30))
    )


class TestFuzzBatchEngine:
    @SETTINGS
    @given(clickstreams(), st.sampled_from(list(Variant)))
    def test_output_always_valid_or_documented_error(self, stream, variant):
        engine = DataAdaptationEngine(AdaptationConfig(variant=variant))
        try:
            graph = engine.build_graph(stream)
        except AdaptationError:
            assert stream.n_purchases == 0
            return
        graph.validate(variant)

    @SETTINGS
    @given(clickstreams())
    def test_node_weights_are_purchase_shares(self, stream):
        try:
            graph = DataAdaptationEngine().build_graph(stream)
        except AdaptationError:
            return
        counts = stream.purchase_counts()
        total = sum(counts.values())
        for item in graph.items():
            assert graph.node_weight(item) == pytest.approx(
                counts[item] / total
            )


class TestFuzzOnlineEngine:
    @SETTINGS
    @given(clickstreams(), st.sampled_from(list(Variant)))
    def test_online_equals_batch(self, stream, variant):
        config = AdaptationConfig(variant=variant)
        online = OnlineAdaptationEngine(config)
        online.observe_all(stream)
        batch_error = online_error = None
        try:
            batch = DataAdaptationEngine(config).build_graph(stream)
        except AdaptationError as exc:
            batch_error = exc
        try:
            snapshot = online.snapshot()
        except AdaptationError as exc:
            online_error = exc
        assert (batch_error is None) == (online_error is None)
        if batch_error is None:
            assert set(snapshot.items()) == set(batch.items())
            assert sorted(snapshot.edges()) == sorted(batch.edges())


class TestFuzzVariantSelection:
    @SETTINGS
    @given(clickstreams())
    def test_recommendation_never_crashes(self, stream):
        try:
            recommendation = recommend_variant(stream)
        except AdaptationError:
            assert stream.n_purchases == 0
            return
        assert recommendation.variant in (
            Variant.INDEPENDENT, Variant.NORMALIZED
        )
        assert 0.0 <= recommendation.normalized_fit <= 1.0
        if recommendation.independence_score is not None:
            assert 0.0 <= recommendation.independence_score <= 1.0
