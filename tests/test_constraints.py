"""Tests for must_retain / exclude constraints on the greedy solver."""

import pytest

from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.errors import SolverError

STRATEGIES = ("naive", "lazy", "accelerated")


class TestMustRetain:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_seeds_occupy_prefix(self, medium_graph, variant, strategy):
        result = greedy_solve(
            medium_graph, 20, variant, strategy=strategy,
            must_retain=[42, 7],
        )
        assert result.retained[:2] == [42, 7]
        assert len(result.retained) == 20

    def test_cover_consistent(self, medium_graph, variant):
        result = greedy_solve(
            medium_graph, 15, variant, must_retain=[3, 99, 200]
        )
        assert result.cover == pytest.approx(
            cover(medium_graph, result.retained, variant), abs=1e-9
        )

    def test_unconstrained_when_seeds_already_chosen(
        self, medium_graph, variant
    ):
        free = greedy_solve(medium_graph, 10, variant)
        seeded = greedy_solve(
            medium_graph, 10, variant, must_retain=free.retained[:3]
        )
        assert seeded.retained == free.retained

    def test_seed_cost_vs_free_greedy(self, medium_graph, variant):
        # Forcing arbitrary seeds can only cost coverage vs free greedy
        # at equal k... not a theorem in general, but monotonicity
        # guarantees the seeded run is at least the seeds' own cover.
        seeded = greedy_solve(medium_graph, 10, variant, must_retain=[480])
        assert seeded.cover >= cover(medium_graph, [480], variant) - 1e-12

    def test_too_many_seeds(self, figure1):
        with pytest.raises(SolverError, match="must_retain"):
            greedy_solve(figure1, 1, "normalized", must_retain=["A", "B"])

    def test_seeds_equal_k(self, figure1, variant):
        result = greedy_solve(
            figure1, 2, variant, must_retain=["A", "E"]
        )
        assert sorted(result.retained) == ["A", "E"]

    def test_prefix_covers_include_seeds(self, figure1, variant):
        result = greedy_solve(figure1, 3, variant, must_retain=["D"])
        assert result.prefix_covers[1] == pytest.approx(
            cover(figure1, ["D"], variant)
        )


class TestExclude:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_excluded_never_retained(self, medium_graph, variant, strategy):
        banned = list(range(0, 100))
        result = greedy_solve(
            medium_graph, 30, variant, strategy=strategy, exclude=banned
        )
        assert not set(result.retained_indices.tolist()) & set(banned)

    def test_strategies_agree_under_exclusion(self, medium_graph, variant):
        banned = list(range(50, 150))
        results = [
            greedy_solve(
                medium_graph, 25, variant, strategy=s, exclude=banned
            )
            for s in STRATEGIES
        ]
        assert results[0].retained == results[1].retained
        assert results[1].retained == results[2].retained

    def test_figure1_excluding_best_pick(self, figure1, variant):
        # With B banned, the greedy must find the next-best pair.
        result = greedy_solve(figure1, 2, variant, exclude=["B"])
        assert "B" not in result.retained
        assert result.cover < 0.873
        # C substitutes for B's role (covers itself and B's demand).
        assert "C" in result.retained

    def test_excluded_items_still_coverable(self, figure1, variant):
        result = greedy_solve(figure1, 2, variant, exclude=["C"])
        csr_index = result.item_ids.index("C")
        # B is retained and covers C completely even though C is banned.
        assert "B" in result.retained
        assert result.coverage[csr_index] == pytest.approx(0.22)

    def test_k_exceeding_free_items(self, figure1):
        with pytest.raises(SolverError, match="non-excluded"):
            greedy_solve(figure1, 4, "normalized",
                         exclude=["A", "B", "C"])

    def test_overlap_with_seeds_rejected(self, figure1):
        with pytest.raises(SolverError, match="overlap"):
            greedy_solve(
                figure1, 2, "normalized",
                must_retain=["A"], exclude=["A"],
            )


class TestCombined:
    def test_seeds_and_exclusions_together(self, medium_graph, variant):
        result = greedy_solve(
            medium_graph, 20, variant,
            must_retain=[400, 401], exclude=list(range(100)),
        )
        indices = result.retained_indices.tolist()
        assert indices[:2] == [400, 401]
        assert not set(indices) & set(range(100))
        assert result.cover == pytest.approx(
            cover(medium_graph, result.retained, variant), abs=1e-9
        )
