"""Tests for the NPC_k <-> VC_k reductions (Theorem 3.1)."""

import numpy as np
import pytest

from repro.core.cover import cover
from repro.core.greedy import greedy_solve
from repro.errors import GraphValidationError, SolverError
from repro.reductions.vertex_cover import (
    MaxVertexCoverInstance,
    greedy_vertex_cover,
    npc_to_vc,
    vc_cover_weight,
    vc_to_npc,
)
from repro.workloads.graphs import small_dense_graph


def random_vc_instance(n, m, seed) -> MaxVertexCoverInstance:
    rng = np.random.default_rng(seed)
    edges = tuple(
        (int(u), int(v), float(w))
        for u, v, w in zip(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.1, 2.0, m),
        )
    )
    return MaxVertexCoverInstance(n=n, edges=edges)


class TestInstanceBasics:
    def test_endpoint_validation(self):
        with pytest.raises(GraphValidationError, match="out of range"):
            MaxVertexCoverInstance(n=2, edges=((0, 5, 1.0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="negative"):
            MaxVertexCoverInstance(n=2, edges=((0, 1, -1.0),))

    def test_total_weight(self):
        inst = MaxVertexCoverInstance(n=3, edges=((0, 1, 1.0), (1, 1, 0.5)))
        assert inst.total_weight() == pytest.approx(1.5)

    def test_cover_weight_counts_each_edge_once(self):
        inst = MaxVertexCoverInstance(n=2, edges=((0, 1, 1.0),))
        assert vc_cover_weight(inst, [0, 1]) == pytest.approx(1.0)

    def test_self_loop_covered_only_by_its_node(self):
        inst = MaxVertexCoverInstance(n=2, edges=((0, 0, 1.0),))
        assert vc_cover_weight(inst, [1]) == 0.0
        assert vc_cover_weight(inst, [0]) == 1.0


class TestForwardReduction:
    """NPC -> VC: cover weight equals C(S) exactly, for every S."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_objective_preserved(self, seed):
        graph = small_dense_graph(12, variant="normalized", seed=seed)
        instance, items = npc_to_vc(graph)
        rng = np.random.default_rng(seed + 100)
        for _ in range(15):
            size = int(rng.integers(0, 13))
            subset = rng.choice(12, size=size, replace=False)
            assert vc_cover_weight(instance, subset) == pytest.approx(
                cover(graph, subset, "normalized"), abs=1e-9
            )

    def test_self_loops_complete_out_weight(self):
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"a": 0.7, "b": 0.3}, edges=[("a", "b", 0.4)]
        )
        instance, items = npc_to_vc(g)
        loops = [(u, v, w) for u, v, w in instance.edges if u == v]
        by_node = {items[u]: w for u, _v, w in loops}
        # a: residual 0.6 * node weight 0.7; b: residual 1.0 * 0.3.
        assert by_node["a"] == pytest.approx(0.42)
        assert by_node["b"] == pytest.approx(0.3)
        assert instance.total_weight() == pytest.approx(1.0)

    def test_rejects_non_normalized_instance(self):
        from repro.core.graph import PreferenceGraph

        g = PreferenceGraph.from_weights(
            {"a": 0.5, "b": 0.25, "c": 0.25},
            edges=[("a", "b", 0.8), ("a", "c", 0.8)],
        )
        with pytest.raises(GraphValidationError, match="Normalized"):
            npc_to_vc(g)


class TestReverseReduction:
    """VC -> NPC: cover(S) * total_mass equals the VC cover weight."""

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_objective_preserved(self, seed):
        instance = random_vc_instance(10, 25, seed)
        graph, mass = vc_to_npc(instance)
        graph.validate("normalized")
        rng = np.random.default_rng(seed + 100)
        for _ in range(15):
            size = int(rng.integers(0, 11))
            subset = [int(x) for x in rng.choice(10, size=size, replace=False)]
            assert cover(graph, subset, "normalized") * mass == pytest.approx(
                vc_cover_weight(instance, subset), abs=1e-9
            )

    def test_roundtrip_composition(self):
        # vc_to_npc then npc_to_vc reproduces the objective (paper's
        # observation that the reductions compose).
        instance = random_vc_instance(8, 18, seed=9)
        graph, mass = vc_to_npc(instance)
        back, items = npc_to_vc(graph)
        rng = np.random.default_rng(0)
        for _ in range(10):
            subset = rng.choice(8, size=4, replace=False)
            assert vc_cover_weight(back, subset) * mass == pytest.approx(
                vc_cover_weight(instance, subset), abs=1e-9
            )

    def test_zero_mass_rejected(self):
        inst = MaxVertexCoverInstance(n=2, edges=())
        with pytest.raises(GraphValidationError, match="no positive"):
            vc_to_npc(inst)


class TestGreedyVC:
    def test_matches_npc_greedy_through_reduction(self):
        # Solving the reduced VC instance greedily picks the same nodes
        # as solving NPC_k directly (Section 3.2).
        graph = small_dense_graph(12, variant="normalized", seed=6)
        instance, items = npc_to_vc(graph)
        vc_selected, vc_value = greedy_vertex_cover(instance, 4)
        npc = greedy_solve(graph, 4, "normalized")
        assert [items[i] for i in vc_selected] == npc.retained
        assert vc_value == pytest.approx(npc.cover, abs=1e-9)

    def test_covers_all_with_all_nodes(self):
        instance = random_vc_instance(6, 12, seed=7)
        _, value = greedy_vertex_cover(instance, 6)
        assert value == pytest.approx(instance.total_weight())

    def test_k_validation(self):
        instance = random_vc_instance(4, 5, seed=8)
        with pytest.raises(SolverError):
            greedy_vertex_cover(instance, 9)
