"""Tests for evaluation metrics and the ASCII table formatter."""

import pytest

from repro.core.greedy import greedy_solve
from repro.errors import SolverError
from repro.evaluation.metrics import (
    approximation_ratio,
    coverage_comparison,
    format_table,
    lift,
)


class TestApproximationRatio:
    def test_basic(self):
        assert approximation_ratio(0.8, 1.0) == pytest.approx(0.8)

    def test_zero_optimum(self):
        assert approximation_ratio(0.0, 0.0) == 1.0

    def test_negative_optimum_rejected(self):
        with pytest.raises(SolverError):
            approximation_ratio(0.5, -1.0)


class TestLift:
    def test_basic(self):
        assert lift(1.2, 1.0) == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert lift(0.5, 0.0) == float("inf")
        assert lift(0.0, 0.0) == 0.0

    def test_negative_lift(self):
        assert lift(0.5, 1.0) == pytest.approx(-0.5)


class TestCoverageComparison:
    def test_rows(self, figure1):
        results = {
            "greedy": greedy_solve(figure1, 2, "normalized"),
            "bigger": greedy_solve(figure1, 3, "normalized"),
        }
        rows = coverage_comparison(results, reference="greedy")
        assert len(rows) == 2
        by_name = {r["algorithm"]: r for r in rows}
        assert by_name["greedy"]["ratio_to_reference"] == pytest.approx(1.0)
        assert by_name["bigger"]["ratio_to_reference"] >= 1.0

    def test_missing_reference(self, figure1):
        results = {"a": greedy_solve(figure1, 1, "normalized")}
        with pytest.raises(SolverError, match="reference"):
            coverage_comparison(results, reference="zzz")

    def test_no_reference(self, figure1):
        rows = coverage_comparison(
            {"a": greedy_solve(figure1, 1, "normalized")}
        )
        assert "ratio_to_reference" not in rows[0]


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"name": "x", "value": 0.123456}, {"name": "yy", "value": 2.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.1235" in text
        assert "yy" in text

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.startswith("My Table")

    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_explicit_columns_and_missing_values(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_float_format_override(self):
        text = format_table([{"x": 0.5}], float_format="{:.1f}")
        assert "0.5" in text
        assert "0.5000" not in text
