"""Tests for the clickstream data model."""

import pytest

from repro.clickstream.models import Clickstream, Session, sessions_from_dicts
from repro.errors import ClickstreamFormatError


class TestSession:
    def test_alternatives_excludes_purchase(self):
        session = Session("s1", clicks=("a", "b", "a", "p"), purchase="p")
        assert session.alternatives() == ("a", "b")

    def test_alternatives_deduplicates_in_order(self):
        session = Session("s1", clicks=("b", "a", "b", "a"), purchase="p")
        assert session.alternatives() == ("b", "a")

    def test_browse_only(self):
        session = Session("s1", clicks=("a",))
        assert not session.has_purchase
        assert session.alternatives() == ("a",)

    def test_clicks_coerced_to_tuple(self):
        session = Session("s1", clicks=["a", "b"], purchase=None)
        assert session.clicks == ("a", "b")

    def test_frozen(self):
        session = Session("s1", clicks=("a",))
        with pytest.raises(AttributeError):
            session.purchase = "x"


class TestClickstream:
    def test_counts(self):
        stream = Clickstream(
            [
                Session("s1", ("a",), purchase="a"),
                Session("s2", ("b",)),
                Session("s3", (), purchase="c"),
            ]
        )
        assert stream.n_sessions == 3
        assert stream.n_purchases == 2
        assert len(stream) == 3

    def test_duplicate_session_id_rejected(self):
        with pytest.raises(ClickstreamFormatError, match="duplicate"):
            Clickstream([Session("s", ()), Session("s", ())])

    def test_purchasing_sessions_filter(self):
        stream = Clickstream(
            [Session("s1", (), purchase="a"), Session("s2", ("b",))]
        )
        filtered = stream.purchasing_sessions()
        assert filtered.n_sessions == 1
        assert filtered[0].session_id == "s1"

    def test_items_first_seen_order(self):
        stream = Clickstream(
            [
                Session("s1", ("x", "y"), purchase="z"),
                Session("s2", ("y", "w"), purchase="x"),
            ]
        )
        assert stream.items() == ["x", "y", "z", "w"]

    def test_purchase_counts(self):
        stream = Clickstream(
            [
                Session("s1", (), purchase="a"),
                Session("s2", (), purchase="a"),
                Session("s3", (), purchase="b"),
            ]
        )
        assert stream.purchase_counts() == {"a": 2, "b": 1}

    def test_stats(self):
        stream = Clickstream([Session("s1", ("x",), purchase="y")])
        assert stream.stats() == {"sessions": 1, "purchases": 1, "items": 2}

    def test_extend(self):
        a = Clickstream([Session("s1", ())])
        b = Clickstream([Session("s2", ())])
        combined = a.extend(b)
        assert combined.n_sessions == 2
        assert a.n_sessions == 1  # originals untouched

    def test_iteration_and_indexing(self):
        sessions = [Session("s1", ()), Session("s2", ())]
        stream = Clickstream(sessions)
        assert list(stream) == sessions
        assert stream[1].session_id == "s2"

    def test_repr(self):
        stream = Clickstream([Session("s1", (), purchase="a")])
        assert "sessions=1" in repr(stream)


class TestSessionsFromDicts:
    def test_builds_sessions(self):
        stream = sessions_from_dicts(
            [{"clicks": ["a"], "purchase": "b"}, {"clicks": []}]
        )
        assert stream.n_sessions == 2
        assert stream[0].purchase == "b"
        assert stream[1].purchase is None

    def test_auto_numbered_ids(self):
        stream = sessions_from_dicts([{"clicks": []}, {"clicks": []}])
        assert [s.session_id for s in stream] == [0, 1]

    def test_explicit_ids_kept(self):
        stream = sessions_from_dicts([{"session_id": "x", "clicks": []}])
        assert stream[0].session_id == "x"

    def test_missing_clicks_rejected(self):
        with pytest.raises(ClickstreamFormatError, match="clicks"):
            sessions_from_dicts([{"purchase": "a"}])
