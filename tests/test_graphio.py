"""Tests for preference-graph serialization (JSON and NPZ)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_solve
from repro.errors import ClickstreamFormatError
from repro.graphio import (
    read_graph_json,
    read_graph_npz,
    write_graph_json,
    write_graph_npz,
)
from repro.workloads.graphs import random_preference_graph


class TestJson:
    def test_roundtrip(self, figure1, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(figure1, path)
        loaded = read_graph_json(path)
        assert set(loaded.items()) == set(figure1.items())
        for item in figure1.items():
            assert loaded.node_weight(item) == pytest.approx(
                figure1.node_weight(item)
            )
        assert sorted(loaded.edges()) == sorted(figure1.edges())

    def test_solver_agrees_after_roundtrip(self, figure1, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(figure1, path)
        loaded = read_graph_json(path)
        assert greedy_solve(loaded, 2, "normalized").retained == ["B", "D"]

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ClickstreamFormatError, match="invalid JSON"):
            read_graph_json(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": {}}')
        with pytest.raises(ClickstreamFormatError, match="edges"):
            read_graph_json(path)


class TestNpz:
    def test_roundtrip_csr(self, tmp_path):
        graph = random_preference_graph(500, seed=9)
        path = tmp_path / "graph.npz"
        write_graph_npz(graph, path)
        loaded = read_graph_npz(path)
        assert loaded.n_items == graph.n_items
        assert loaded.n_edges == graph.n_edges
        np.testing.assert_allclose(loaded.node_weight, graph.node_weight)
        # CSR grouping is canonical, so the arrays match directly.
        np.testing.assert_array_equal(loaded.in_src, graph.in_src)
        np.testing.assert_allclose(loaded.in_weight, graph.in_weight)

    def test_roundtrip_from_preference_graph(self, figure1, tmp_path):
        path = tmp_path / "fig1.npz"
        write_graph_npz(figure1, path)
        loaded = read_graph_npz(path)
        # Item ids survive (as strings).
        assert set(loaded.items) == {"A", "B", "C", "D", "E"}
        result = greedy_solve(loaded, 2, "normalized")
        assert result.retained == ["B", "D"]

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, node_weight=np.ones(2))
        with pytest.raises(ClickstreamFormatError, match="missing arrays"):
            read_graph_npz(path)

    def test_solutions_identical_across_formats(self, tmp_path):
        graph = random_preference_graph(300, variant="normalized", seed=10)
        json_path = tmp_path / "g.json"
        npz_path = tmp_path / "g.npz"
        write_graph_json(graph.to_preference_graph(), json_path)
        write_graph_npz(graph, npz_path)
        from_json = greedy_solve(read_graph_json(json_path), 30, "normalized")
        from_npz = greedy_solve(read_graph_npz(npz_path), 30, "normalized")
        assert [str(i) for i in from_json.retained] == [
            str(i) for i in from_npz.retained
        ]
        assert from_json.cover == pytest.approx(from_npz.cover, abs=1e-12)
