"""Maintaining a reduced assortment as the market drifts.

Combines three pieces the paper's conclusion points toward: a consumer
population whose popularity and preferences drift week over week
(``DriftingMarket``), streaming graph maintenance with decayed counts
(``OnlineAdaptationEngine``), and incremental re-solving that reuses the
stable prefix of the previous greedy solution (``IncrementalSolver``).
Each week the retained assortment is audited for lost demand and
load-bearing items.

Run:  python examples/assortment_over_time.py
"""

from repro.adaptation import OnlineAdaptationEngine
from repro.adaptation.engine import AdaptationConfig
from repro.clickstream import DriftConfig, DriftingMarket, ShopperConfig
from repro.core.variants import Variant
from repro.evaluation.audit import audit_retained_set
from repro.extensions.incremental import IncrementalSolver

WEEKS = 6
SESSIONS_PER_WEEK = 15_000
ASSORTMENT_SIZE = 30


def main() -> None:
    market = DriftingMarket(
        ShopperConfig(n_items=200, behavior="independent"),
        DriftConfig(popularity_sigma=0.12, acceptance_churn=0.03),
        seed=2024,
    )
    engine = OnlineAdaptationEngine(
        AdaptationConfig(variant=Variant.INDEPENDENT),
        decay=0.6,  # older weeks fade out of the statistics
    )
    solver = None

    print(f"{'week':>4}  {'cover':>7}  {'reused':>6}  "
          f"{'lost demand':>11}  load-bearing item")
    for week, clickstream, _truth in market.run(WEEKS, SESSIONS_PER_WEEK):
        engine.new_period()
        engine.observe_all(clickstream)
        graph = engine.snapshot()

        if solver is None:
            solver = IncrementalSolver(
                graph, k=ASSORTMENT_SIZE, variant="independent"
            )
            result = solver.solve()
        else:
            solver.graph = graph
            result = solver.resolve()

        audit = audit_retained_set(
            graph, result.retained, "independent", top=1
        )
        top_load = audit.load_bearing[0]
        print(
            f"{week:>4}  {result.cover:>7.4f}  "
            f"{solver.last_reused_prefix:>3}/{ASSORTMENT_SIZE:<2}  "
            f"{audit.total_lost:>11.4f}  "
            f"{top_load.item} (absorbs {top_load.absorbed_demand:.4f})"
        )

    print(
        "\nthe incremental solver replays the previous week's selection "
        "and only re-optimizes from the first choice the drift actually "
        "changed."
    )


if __name__ == "__main__":
    main()
