"""Quickstart: the paper's Figure 1 example, start to finish.

Builds the five-item preference graph of Figure 1, shows why the naive
"keep the top sellers" policy loses to preference-aware selection, and
reproduces every number from Examples 1.1 and 3.2.

Run:  python examples/quickstart.py
"""

from repro import (
    PreferenceGraph,
    brute_force_solve,
    cover,
    greedy_solve,
    item_coverage,
    top_k_weight_solve,
)
from repro.core.csr import as_csr


def main() -> None:
    # The Figure 1 graph: node weight = purchase popularity, edge weight
    # = probability the target is an acceptable alternative.
    graph = PreferenceGraph.from_weights(
        {"A": 0.33, "B": 0.22, "C": 0.22, "D": 0.06, "E": 0.17},
        edges=[
            ("A", "B", 2 / 3),   # A-shoppers accept B two times in three
            ("B", "C", 1.0),     # B and C fully substitute each other
            ("C", "B", 1.0),
            ("E", "D", 0.9),     # E-shoppers almost always accept D
        ],
    )
    graph.validate("normalized")
    print(f"catalog: {graph.n_items} items, {graph.n_edges} preference edges")

    # Naive policy: keep the two best sellers.
    naive = top_k_weight_solve(graph, 2, "normalized")
    print(f"\ntop-2 sellers {naive.retained}: cover = {naive.cover:.3f}")

    # Preference-aware greedy (the paper's Algorithm 1).
    greedy = greedy_solve(graph, 2, "normalized")
    print(f"greedy        {greedy.retained}: cover = {greedy.cover:.3f}")
    print(f"  first pick gain : {greedy.prefix_covers[1]:.3f}  (B)")
    second_gain = greedy.prefix_covers[2] - greedy.prefix_covers[1]
    print(f"  second pick gain: {second_gain:.3f}  (D, the least-sold item!)")

    # Brute force confirms the greedy choice is optimal here.
    optimal = brute_force_solve(graph, 2, "normalized")
    assert sorted(optimal.retained) == sorted(greedy.retained)
    print(f"brute force confirms optimality: C(S*) = {optimal.cover:.3f}")

    # Which requests does the reduced inventory still serve?
    csr = as_csr(graph)
    conditional = item_coverage(csr, greedy.retained, "normalized")
    print("\nper-item coverage with {B, D} retained:")
    for index, item in enumerate(csr.items):
        marker = "retained" if item in greedy.retained else "covered "
        print(f"  {item}: {conditional[index]:6.1%}  ({marker})")

    # The Independent variant gives the same answer on this graph
    # (every non-retained item has at most one retained alternative).
    assert cover(graph, greedy.retained, "independent") == greedy.cover
    print("\nIndependent variant agrees on this instance.")


if __name__ == "__main__":
    main()
