"""Scenario 3 (paper intro): periodic disposal of low-value items.

Companies periodically dispose of a small percentage of items to reduce
data-maintenance cost.  "Drop the worst sellers" is tempting but wrong:
an unpopular item may be the only acceptable alternative for popular
requests.  This example retains 95% of a Fashion catalog (PF stand-in),
compares what greedy drops vs what the sales-rank policy drops, and then
uses the incremental solver to *maintain* the selection cheaply as item
popularity drifts week over week — the paper's stated future-work
direction, implemented in repro.extensions.

Run:  python examples/maintenance_reduction.py
"""

import numpy as np

from repro import cover, greedy_solve, top_k_weight_solve
from repro.adaptation import build_preference_graph
from repro.extensions.incremental import IncrementalSolver
from repro.workloads.datasets import build_dataset

KEEP_FRACTION = 0.95


def main() -> None:
    print("simulating Fashion clickstream (PF stand-in)...")
    clickstream, _population = build_dataset("PF", scale=0.0008, seed=3)
    graph = build_preference_graph(clickstream, "independent")
    n = graph.n_items
    keep = int(n * KEEP_FRACTION)
    print(f"  catalog {n:,} items; disposing of {n - keep} ({n - keep} = 5%)")

    greedy = greedy_solve(graph, keep, "independent")
    naive = top_k_weight_solve(graph, keep, "independent")
    print(f"\ngreedy keeps  : cover = {greedy.cover:.4f}")
    print(f"sales-rank    : cover = {naive.cover:.4f}")

    dropped_by_greedy = set(graph.items()) - set(greedy.retained)
    dropped_by_naive = set(graph.items()) - set(naive.retained)
    saved = dropped_by_naive - dropped_by_greedy
    print(
        f"\n{len(saved)} low-selling items the sales-rank policy would "
        f"discard are kept by greedy because they cover other demand:"
    )
    for item in sorted(saved, key=str)[:5]:
        in_weight = sum(
            graph.node_weight(src) * w
            for src, w in graph.in_neighbors(item).items()
        )
        print(
            f"  {item}: own share {graph.node_weight(item):.5f}, "
            f"covers {in_weight:.5f} of other items' demand"
        )

    # --- Incremental maintenance across popularity drift ------------
    print("\nsimulating 4 weeks of popularity drift "
          "(incremental vs from-scratch):")
    solver = IncrementalSolver(graph, k=keep, variant="independent")
    solver.solve()
    rng = np.random.default_rng(0)
    items = list(graph.items())
    for week in range(1, 5):
        # Shift a little popularity mass between random item pairs.
        for _ in range(5):
            a, b = rng.choice(len(items), size=2, replace=False)
            item_a, item_b = items[a], items[b]
            delta = graph.node_weight(item_a) * 0.1
            solver.update_node_weight(
                item_a, graph.node_weight(item_a) - delta
            )
            solver.update_node_weight(
                item_b, graph.node_weight(item_b) + delta
            )
        result = solver.resolve()
        fresh = greedy_solve(graph, keep, "independent")
        assert result.retained == fresh.retained
        print(
            f"  week {week}: reused {solver.last_reused_prefix}/{keep} "
            f"greedy picks, cover = {result.cover:.4f}"
        )


if __name__ == "__main__":
    main()
