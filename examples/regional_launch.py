"""Scenario 2 (paper intro): opening a branch overseas.

Regulations cap how many products may be shipped abroad, but the real
business requirement is usually phrased the other way around: *"cover at
least X% of local demand with as few listed items as possible"* — the
paper's complementary minimization problem.  This example runs the
direct greedy threshold solver against the binary-search-adapted
baselines on a Motors-domain clickstream (the PM stand-in, which fits
the Normalized variant), reproducing the Figure 4f comparison shape.

Run:  python examples/regional_launch.py
"""

from repro import InventoryReducer, greedy_threshold_solve
from repro.adaptation import build_preference_graph, recommend_variant
from repro.core.baselines import (
    top_k_coverage_threshold,
    top_k_weight_threshold,
)
from repro.evaluation.metrics import format_table
from repro.workloads.datasets import build_dataset

DEMAND_TARGETS = (0.5, 0.6, 0.7, 0.8, 0.9)


def main() -> None:
    print("simulating Motors clickstream (PM stand-in)...")
    clickstream, _population = build_dataset("PM", scale=0.001, seed=7)

    # Let the system pick the variant from the data (the paper's PM
    # dataset passes the Normalized fitness test).
    recommendation = recommend_variant(clickstream)
    print(
        f"  variant selected from data: {recommendation.variant.value} "
        f"(normalized_fit={recommendation.normalized_fit:.3f})"
    )
    graph = build_preference_graph(clickstream, recommendation.variant)
    print(f"  catalog: {graph.n_items:,} items")

    rows = []
    for target in DEMAND_TARGETS:
        greedy = greedy_threshold_solve(graph, target, recommendation.variant)
        by_weight = top_k_weight_threshold(
            graph, target, recommendation.variant
        )
        by_coverage = top_k_coverage_threshold(
            graph, target, recommendation.variant
        )
        rows.append(
            {
                "demand_target": target,
                "greedy_items": greedy.k,
                "topk_weight_items": by_weight.k,
                "topk_coverage_items": by_coverage.k,
            }
        )

    print()
    print(
        format_table(
            rows,
            title="Items needed to reach each demand-coverage target",
            float_format="{:.2f}",
        )
    )

    # The same flow through the end-to-end reducer.
    report = InventoryReducer(threshold=0.8).run(clickstream)
    print(
        f"\nInventoryReducer: ship {len(report.retained)} items to cover "
        f"{report.cover:.1%} of demand"
    )
    print("first items to list abroad:", ", ".join(
        str(item) for item in report.retained[:5]
    ))


if __name__ == "__main__":
    main()
