"""Scenario 1 (paper intro): stocking an express-delivery warehouse.

A same-day-delivery branch can hold only a small fraction of the full
catalog.  This example simulates an Electronics-domain clickstream
(the PE dataset stand-in), builds the preference graph, selects the
warehouse inventory with the greedy solver, and then *replays real
shopper behavior* against the reduced stock to measure how many sales
each policy actually fulfills.

Run:  python examples/express_delivery.py
"""

from repro import greedy_solve, random_solve, top_k_weight_solve
from repro.adaptation import build_preference_graph
from repro.evaluation.metrics import format_table
from repro.evaluation.replay import simulate_fulfillment
from repro.workloads.datasets import build_dataset

WAREHOUSE_CAPACITY_FRACTION = 0.10  # stock 10% of the catalog


def main() -> None:
    print("simulating Electronics clickstream (PE stand-in)...")
    clickstream, population = build_dataset("PE", scale=0.001, seed=42)
    stats = clickstream.stats()
    print(f"  {stats['sessions']:,} sessions over {stats['items']:,} items")

    graph = build_preference_graph(clickstream, "independent")
    capacity = max(1, int(graph.n_items * WAREHOUSE_CAPACITY_FRACTION))
    print(
        f"  preference graph: {graph.n_items:,} items, "
        f"{graph.n_edges:,} edges; warehouse capacity = {capacity} items"
    )

    policies = {
        "greedy (paper)": greedy_solve(graph, capacity, "independent"),
        "top sellers": top_k_weight_solve(graph, capacity, "independent"),
        "random (best of 10)": random_solve(
            graph, capacity, "independent", seed=7, draws=10
        ),
    }

    rows = []
    for name, result in policies.items():
        # Replay ground-truth shoppers against the stocked warehouse:
        # a sale happens if the desired item is stocked, or if the
        # shopper accepts a stocked alternative.
        sales = simulate_fulfillment(
            population, result.retained, n_sessions=100_000, seed=1
        )
        rows.append(
            {
                "policy": name,
                "predicted_cover": result.cover,
                "realized_sales_rate": sales.match_rate,
                "solve_time_s": result.wall_time_s,
            }
        )

    print()
    print(format_table(rows, title="Express-delivery stocking policies"))
    best = max(rows, key=lambda r: r["realized_sales_rate"])
    naive = next(r for r in rows if r["policy"] == "top sellers")
    gain = (
        best["realized_sales_rate"] / naive["realized_sales_rate"] - 1
    ) * 100
    print(
        f"\npreference-aware selection fulfills {gain:+.1f}% more sessions "
        f"than stocking the top sellers."
    )


if __name__ == "__main__":
    main()
