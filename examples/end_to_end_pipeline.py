"""The full Figure 2 system, plus the revenue/capacity extensions.

Runs the complete architecture — raw clickstream -> Data Adaptation
Engine (with data-driven variant selection) -> Preference Cover Solver
-> retained-inventory report — then shows the two future-work
extensions the paper names in its conclusion: per-item revenues and
storage-budget constraints.

Run:  python examples/end_to_end_pipeline.py
"""

import numpy as np

from repro import InventoryReducer
from repro.core.csr import as_csr
from repro.evaluation.metrics import format_table
from repro.extensions.capacity import budget_spent, capacity_greedy_solve
from repro.extensions.revenue import expected_revenue, revenue_greedy_solve
from repro.workloads.datasets import build_dataset


def main() -> None:
    print("=== Figure 2: end-to-end flow ===")
    clickstream, _population = build_dataset("YC", scale=0.02, seed=1)
    reducer = InventoryReducer(k=40)  # variant="auto" by default
    report = reducer.run(clickstream)
    print(report.summary())

    print("\nmost-requested items and their coverage:")
    rows = [
        {
            "item": str(row.item),
            "requested": row.request_probability,
            "coverage": row.coverage,
            "retained": "yes" if row.retained else "no",
        }
        for row in report.item_table()[:8]
    ]
    print(format_table(rows))

    graph = report.graph
    csr = as_csr(graph)
    rng = np.random.default_rng(5)

    print("\n=== Extension: revenue-weighted selection ===")
    revenues = rng.uniform(5.0, 120.0, csr.n_items)
    revenue_result = revenue_greedy_solve(graph, 40, report.variant, revenues)
    plain_revenue = expected_revenue(
        graph, report.retained, report.variant, revenues
    )
    print(f"count-based retained set : expected revenue "
          f"{plain_revenue:10.2f}")
    print(f"revenue-aware retained set: expected revenue "
          f"{revenue_result.cover:10.2f}")
    swapped = set(revenue_result.retained) - set(report.retained)
    print(f"{len(swapped)} items differ between the two selections")

    print("\n=== Extension: storage-budget selection ===")
    costs = rng.uniform(0.5, 4.0, csr.n_items)
    budget = 30.0
    capped = capacity_greedy_solve(graph, budget, report.variant, costs)
    spent = budget_spent(graph, capped.retained, costs)
    print(
        f"budget {budget:.1f} storage units -> retained {capped.k} items "
        f"(spent {spent:.2f}), cover = {capped.cover:.4f} "
        f"[{capped.strategy}]"
    )


if __name__ == "__main__":
    main()
