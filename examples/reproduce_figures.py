"""Standalone driver regenerating the paper's figure data.

The pytest benchmarks in ``benchmarks/`` are the canonical reproduction
(with assertions); this script renders the same series — computed by
``repro.experiments`` — for quick interactive use, including terminal
plots for the log-scale and curve figures.

Run:  python examples/reproduce_figures.py [--fast]
"""

import argparse
import sys

from repro.evaluation.ascii_plot import bar_chart, figure_4c_plot
from repro.evaluation.metrics import format_table
from repro.experiments import (
    fig4a_rows,
    fig4b_rows,
    fig4c_rows,
    fig4d_rows,
    fig4e_rows,
    fig4f_rows,
    table2_rows,
)


def table_2(fast: bool) -> None:
    rows = table2_rows(scale=0.0005 if fast else 0.001, seed=0)
    display = [
        {
            "DS": row["dataset"],
            "variant": row["variant"],
            "items": row["generated_items"],
            "edges": row["generated_edges"],
            "sessions": row["generated_sessions"],
        }
        for row in rows
    ]
    print(format_table(display, title="Table 2 — dataset stand-ins"))


def figure_4a(fast: bool) -> None:
    rows = fig4a_rows(
        n_items=14 if fast else 16,
        k_values=(2, 4, 6) if fast else (2, 4, 6, 8, 10),
    )
    print(format_table(rows, title="Figure 4a — Greedy vs BF coverage"))


def figure_4b(fast: bool) -> None:
    rows = fig4b_rows(sizes=(10, 12, 14) if fast else (10, 12, 14, 16))
    print(format_table(
        rows, title="Figure 4b — Greedy vs BF runtime",
        float_format="{:.5f}",
    ))
    print(bar_chart(
        [f"n={row['n']}" for row in rows],
        [row["bf_s"] for row in rows],
        log_scale=True,
        title="BF runtime, seconds (log scale)",
    ))


def figure_4c(fast: bool) -> None:
    rows = fig4c_rows(
        scale=0.01 if fast else 0.05,
        fractions=(0.1, 0.5, 0.9) if fast else (0.1, 0.3, 0.5, 0.7, 0.9),
    )
    print(format_table(rows, title="Figure 4c — coverage quality"))
    print()
    print(figure_4c_plot(rows))


def figure_4d(fast: bool) -> None:
    rows = fig4d_rows(
        sizes=(10_000, 50_000) if fast
        else (10_000, 50_000, 100_000, 250_000),
    )
    print(format_table(rows, title="Figure 4d — scalability"))


def figure_4e(fast: bool) -> None:
    rows = fig4e_rows(
        n_items=50_000 if fast else 200_000,
        k=50 if fast else 100,
    )
    display = [
        {"cores": row["workers"], "modeled_speedup": row["speedup"]}
        for row in rows
    ]
    print(format_table(
        display, title="Figure 4e — parallel speedup (work-span model)"
    ))


def figure_4f(fast: bool) -> None:
    rows = fig4f_rows(
        scale=0.01 if fast else 0.05,
        thresholds=(0.5, 0.7, 0.9) if fast else (0.5, 0.6, 0.7, 0.8, 0.9),
    )
    print(format_table(rows, title="Figure 4f — complementary problem"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller instances, quicker run")
    args = parser.parse_args(argv)
    for build in (table_2, figure_4a, figure_4b, figure_4c,
                  figure_4d, figure_4e, figure_4f):
        build(args.fast)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
