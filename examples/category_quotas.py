"""Department coverage: Preference Cover under category quotas.

An express warehouse with room for 40 items cannot be all phone cases:
merchandising requires every department represented.  This example
assigns items to departments, caps each department's share, and compares
the quota-constrained greedy (partition-matroid greedy, 1/2 guarantee)
with the unconstrained one — quantifying the "price of department
coverage" in lost cover.

Run:  python examples/category_quotas.py
"""

from collections import Counter

from repro import greedy_solve
from repro.adaptation import build_preference_graph
from repro.evaluation.metrics import format_table
from repro.extensions.quotas import category_counts, quota_greedy_solve
from repro.workloads.datasets import build_dataset

DEPARTMENTS = ("phones", "audio", "computing", "tv", "accessories")
ASSORTMENT_SIZE = 40


def main() -> None:
    clickstream, _model = build_dataset("PE", scale=0.0004, seed=99)
    graph = build_preference_graph(clickstream, "independent")
    items = list(graph.items())
    categories = {
        item: DEPARTMENTS[i % len(DEPARTMENTS)]
        for i, item in enumerate(items)
    }
    print(f"catalog: {len(items)} items across {len(DEPARTMENTS)} "
          f"departments; assortment size {ASSORTMENT_SIZE}")

    free = greedy_solve(graph, ASSORTMENT_SIZE, "independent")
    free_counts = Counter(categories[i] for i in free.retained)

    per_department = ASSORTMENT_SIZE // len(DEPARTMENTS)
    quotas = {d: per_department for d in DEPARTMENTS}
    constrained = quota_greedy_solve(
        graph, "independent", categories, quotas, k=ASSORTMENT_SIZE
    )
    constrained_counts = category_counts(constrained, categories)

    rows = [
        {
            "department": d,
            "unconstrained_items": free_counts.get(d, 0),
            "quota": quotas[d],
            "constrained_items": constrained_counts.get(d, 0),
        }
        for d in DEPARTMENTS
    ]
    print()
    print(format_table(rows, title="Department representation"))
    print(
        f"\nunconstrained cover : {free.cover:.4f}"
        f"\nquota-constrained   : {constrained.cover:.4f}"
        f"\nprice of department coverage: "
        f"{free.cover - constrained.cover:.4f} of demand"
    )


if __name__ == "__main__":
    main()
