"""The Data Adaptation Engine on the paper's Figure 3 example.

Walks the exact iPhone-color clickstream of Figure 3a through the
engine, prints the resulting preference graph (Figure 3b), demonstrates
the variant fitness tests of Section 5.2, and round-trips the stream
through the YooChoose CSV format so the real RecSys-2015 files can be
used the same way.

Run:  python examples/clickstream_to_graph.py
"""

import tempfile
from pathlib import Path

from repro.adaptation import (
    build_preference_graph,
    independence_score,
    normalized_fit,
    recommend_variant,
)
from repro.clickstream import (
    read_yoochoose,
    sessions_from_dicts,
    write_yoochoose,
)
from repro.examples_data import figure3_sessions


def main() -> None:
    stream = sessions_from_dicts(figure3_sessions())
    print("Figure 3a sessions:")
    for session in stream:
        clicks = ", ".join(str(c) for c in session.clicks) or "(none)"
        print(f"  clicks: [{clicks}]  ->  purchased: {session.purchase}")

    # Variant fitness (Section 5.2): every session implies at most one
    # alternative, so the Normalized variant is a perfect fit.
    fit = normalized_fit(stream)
    nmi = independence_score(stream, min_purchases=1)
    recommendation = recommend_variant(stream, min_purchases=1)
    print(f"\nnormalized fit      : {fit:.2f} (threshold 0.90)")
    print(f"independence score  : {nmi}")
    print(f"selected variant    : {recommendation.variant.value}")

    graph = build_preference_graph(stream, recommendation.variant)
    print("\nFigure 3b preference graph:")
    for item in graph.items():
        print(f"  node {item}: W = {graph.node_weight(item):.2f}")
    for source, target, weight in sorted(graph.edges()):
        print(f"  edge {source} -> {target}: W = {weight:.2f}")

    # Round-trip through the YooChoose on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        clicks_path = Path(tmp) / "yoochoose-clicks.dat"
        buys_path = Path(tmp) / "yoochoose-buys.dat"
        write_yoochoose(stream, clicks_path, buys_path)
        print(f"\nwrote YooChoose files ({clicks_path.name}, "
              f"{buys_path.name})")
        loaded = read_yoochoose(clicks_path, buys_path)
        rebuilt = build_preference_graph(loaded, "normalized")
        assert sorted(rebuilt.edges()) == sorted(graph.edges())
        print("re-read them and rebuilt the identical graph.")


if __name__ == "__main__":
    main()
